"""Deterministic TPC-H data generator (the dbgen substrate).

Follows the TPC-H specification's value distributions closely enough that
query selectivities, join fan-outs, and group cardinalities have the right
*shape* at any scale factor — which is what the paper's Figures 4/5 and
Table 2 depend on.  Highlights:

* fixed region/nation tables and the spec's part naming vocabulary
  (``p_name`` draws five colour words, so ``%green%``/``forest%`` hit the
  Q9/Q20 selectivities);
* the spec's partsupp supplier-assignment formula, so every part has four
  suppliers and lineitem (partkey, suppkey) pairs join back to partsupp;
* order dates uniform over 1992-01-01..1998-08-02 with ship/commit/receipt
  offsets per spec, driving Q1/Q4/Q6/... date selectivities;
* seeded comment patterns for Q13 (``%special%requests%``) and Q16
  (``%Customer%Complaints%``).

Everything is generated with a seeded NumPy RNG: same scale factor, same
bytes, on every machine.
"""

from __future__ import annotations

import datetime

import numpy as np

from ..columnar import Column, Table, column_from_pylist, date_to_days
from ..columnar.dtypes import DATE32, FLOAT64, INT64
from .schema import TABLE_BASE_ROWS, TPCH_SCHEMAS

__all__ = ["generate_tpch", "generate_table"]

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

_COLOURS = (
    "almond antique aquamarine azure beige bisque black blanched blue blush "
    "brown burlywood burnished chartreuse chiffon chocolate coral cornflower "
    "cornsilk cream cyan dark deep dim dodger drab firebrick floral forest "
    "frosted gainsboro ghost goldenrod green grey honeydew hot indian ivory "
    "khaki lace lavender lawn lemon light lime linen magenta maroon medium "
    "metallic midnight mint misty moccasin navajo navy olive orange orchid "
    "pale papaya peach peru pink plum powder puff purple red rose rosy royal "
    "saddle salmon sandy seashell sienna sky slate smoke snow spring steel "
    "tan thistle tomato turquoise violet wheat white yellow"
).split()

_TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_CONTAINER_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
_CONTAINER_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_COMMENT_WORDS = (
    "carefully quickly furiously slyly blithely regular ironic final express "
    "pending bold even silent unusual special packages deposits requests "
    "accounts instructions theodolites platelets foxes pinto beans ideas "
    "dependencies excuses asymptotes courts dolphins multipliers sauternes"
).split()

_START_DATE = date_to_days(datetime.date(1992, 1, 1))
_END_ORDER_DATE = date_to_days(datetime.date(1998, 8, 2))
_CURRENT_DATE = date_to_days(datetime.date(1995, 6, 17))


def _scaled(table: str, sf: float) -> int:
    return max(int(TABLE_BASE_ROWS[table] * sf), 1)


def _comments(rng: np.random.Generator, n: int, words: int = 5) -> Column:
    picks = rng.integers(0, len(_COMMENT_WORDS), size=(n, words))
    vocab = np.asarray(_COMMENT_WORDS, dtype=object)
    values = [" ".join(vocab[row]) for row in picks]
    return Column.from_strings(values)


def _strings(values) -> Column:
    return Column.from_strings(list(values))


def _money(rng: np.random.Generator, n: int, low: float, high: float) -> np.ndarray:
    return np.round(rng.uniform(low, high, n), 2)


def generate_table(table: str, sf: float, seed: int = 19920101) -> Table:
    """Generate one TPC-H table at scale factor ``sf``."""
    generators = {
        "region": _gen_region,
        "nation": _gen_nation,
        "supplier": _gen_supplier,
        "customer": _gen_customer,
        "part": _gen_part,
        "partsupp": _gen_partsupp,
        "orders": _gen_orders_and_lineitem,
        "lineitem": _gen_orders_and_lineitem,
    }
    if table not in generators:
        raise KeyError(f"unknown TPC-H table {table!r}")
    if table in ("orders", "lineitem"):
        orders, lineitem = _gen_orders_and_lineitem(sf, seed)
        return orders if table == "orders" else lineitem
    return generators[table](sf, seed)


def generate_tpch(sf: float = 0.01, seed: int = 19920101) -> dict[str, Table]:
    """Generate the full eight-table TPC-H database."""
    orders, lineitem = _gen_orders_and_lineitem(sf, seed)
    return {
        "region": _gen_region(sf, seed),
        "nation": _gen_nation(sf, seed),
        "supplier": _gen_supplier(sf, seed),
        "customer": _gen_customer(sf, seed),
        "part": _gen_part(sf, seed),
        "partsupp": _gen_partsupp(sf, seed),
        "orders": orders,
        "lineitem": lineitem,
    }


def _gen_region(sf: float, seed: int) -> Table:
    rng = np.random.default_rng(seed + 1)
    schema = TPCH_SCHEMAS["region"]
    return Table(
        schema,
        [
            column_from_pylist(list(range(5)), INT64),
            _strings(_REGIONS),
            _comments(rng, 5),
        ],
    )


def _gen_nation(sf: float, seed: int) -> Table:
    rng = np.random.default_rng(seed + 2)
    schema = TPCH_SCHEMAS["nation"]
    return Table(
        schema,
        [
            column_from_pylist(list(range(25)), INT64),
            _strings([n for n, _ in _NATIONS]),
            column_from_pylist([r for _, r in _NATIONS], INT64),
            _comments(rng, 25),
        ],
    )


def _gen_supplier(sf: float, seed: int) -> Table:
    rng = np.random.default_rng(seed + 3)
    n = _scaled("supplier", sf)
    keys = np.arange(1, n + 1)
    nationkeys = rng.integers(0, 25, n)
    comments = _comments(rng, n).to_pylist()
    # Per spec: ~5 per 10k suppliers complain, ~5 recommend (Q16's filter).
    complain = rng.choice(n, size=max(n // 2000, 1), replace=False)
    for i in complain:
        comments[i] = "sleep slyly Customer waiting Complaints about"
    phones = [_phone(rng, int(nk)) for nk in nationkeys]
    return Table(
        TPCH_SCHEMAS["supplier"],
        [
            column_from_pylist(keys.tolist(), INT64),
            _strings([f"Supplier#{k:09d}" for k in keys]),
            _strings([_address(rng) for _ in range(n)]),
            column_from_pylist(nationkeys.tolist(), INT64),
            _strings(phones),
            Column(FLOAT64, _money(rng, n, -999.99, 9999.99)),
            Column.from_strings(comments),
        ],
    )


def _gen_customer(sf: float, seed: int) -> Table:
    rng = np.random.default_rng(seed + 4)
    n = _scaled("customer", sf)
    keys = np.arange(1, n + 1)
    nationkeys = rng.integers(0, 25, n)
    segments = rng.integers(0, len(_SEGMENTS), n)
    seg_vocab = np.asarray(_SEGMENTS, dtype=object)
    return Table(
        TPCH_SCHEMAS["customer"],
        [
            column_from_pylist(keys.tolist(), INT64),
            _strings([f"Customer#{k:09d}" for k in keys]),
            _strings([_address(rng) for _ in range(n)]),
            column_from_pylist(nationkeys.tolist(), INT64),
            _strings([_phone(rng, int(nk)) for nk in nationkeys]),
            Column(FLOAT64, _money(rng, n, -999.99, 9999.99)),
            Column.from_strings(list(seg_vocab[segments])),
            _comments(rng, n),
        ],
    )


def _gen_part(sf: float, seed: int) -> Table:
    rng = np.random.default_rng(seed + 5)
    n = _scaled("part", sf)
    keys = np.arange(1, n + 1)
    colour_idx = rng.integers(0, len(_COLOURS), size=(n, 5))
    vocab = np.asarray(_COLOURS, dtype=object)
    names = [" ".join(vocab[row]) for row in colour_idx]
    mfgr = rng.integers(1, 6, n)
    brand = mfgr * 10 + rng.integers(1, 6, n)
    types = [
        f"{_TYPE_SYLL1[a]} {_TYPE_SYLL2[b]} {_TYPE_SYLL3[c]}"
        for a, b, c in zip(
            rng.integers(0, 6, n), rng.integers(0, 5, n), rng.integers(0, 5, n)
        )
    ]
    containers = [
        f"{_CONTAINER_1[a]} {_CONTAINER_2[b]}"
        for a, b in zip(rng.integers(0, 5, n), rng.integers(0, 8, n))
    ]
    # Spec retail price formula: 90000 + ((key/10) % 20001) + 100*(key % 1000), /100.
    price = (90000 + (keys / 10 % 20001) + 100 * (keys % 1000)) / 100.0
    return Table(
        TPCH_SCHEMAS["part"],
        [
            column_from_pylist(keys.tolist(), INT64),
            Column.from_strings(names),
            _strings([f"Manufacturer#{m}" for m in mfgr]),
            _strings([f"Brand#{b}" for b in brand]),
            Column.from_strings(types),
            column_from_pylist(rng.integers(1, 51, n).tolist(), INT64),
            Column.from_strings(containers),
            Column(FLOAT64, np.round(price, 2)),
            _comments(rng, n, words=3),
        ],
    )


def _supplier_for_part(partkey: np.ndarray, i: int, num_suppliers: int, num_parts: int):
    """The spec's supplier assignment: the i-th (0..3) supplier of a part."""
    s = num_suppliers
    return (
        (partkey + i * (s // 4 + (partkey - 1) // num_parts)) % s
    ) + 1


def _gen_partsupp(sf: float, seed: int) -> Table:
    rng = np.random.default_rng(seed + 6)
    num_parts = _scaled("part", sf)
    num_suppliers = _scaled("supplier", sf)
    partkeys = np.repeat(np.arange(1, num_parts + 1), 4)
    i_idx = np.tile(np.arange(4), num_parts)
    suppkeys = _supplier_for_part(partkeys, 0, num_suppliers, num_parts)
    for i in range(1, 4):
        mask = i_idx == i
        suppkeys[mask] = _supplier_for_part(partkeys[mask], i, num_suppliers, num_parts)
    n = len(partkeys)
    return Table(
        TPCH_SCHEMAS["partsupp"],
        [
            column_from_pylist(partkeys.tolist(), INT64),
            column_from_pylist(suppkeys.tolist(), INT64),
            column_from_pylist(rng.integers(1, 10000, n).tolist(), INT64),
            Column(FLOAT64, _money(rng, n, 1.0, 1000.0)),
            _comments(rng, n),
        ],
    )


def _gen_orders_and_lineitem(sf: float, seed: int) -> tuple[Table, Table]:
    rng = np.random.default_rng(seed + 7)
    num_orders = _scaled("orders", sf)
    num_customers = _scaled("customer", sf)
    num_parts = _scaled("part", sf)
    num_suppliers = _scaled("supplier", sf)

    orderkeys = np.arange(1, num_orders + 1) * 4 - 3  # sparse keys, per spec
    # Only two thirds of customers have orders (spec: custkey % 3 != 0).
    raw_cust = rng.integers(1, max(num_customers, 2), num_orders)
    custkeys = np.where(raw_cust % 3 == 0, (raw_cust % max(num_customers - 1, 1)) + 1, raw_cust)
    custkeys = np.where(custkeys % 3 == 0, np.maximum(custkeys - 1, 1), custkeys)
    orderdates = rng.integers(_START_DATE, _END_ORDER_DATE + 1, num_orders)
    priorities = rng.integers(0, 5, num_orders)

    lines_per_order = rng.integers(1, 8, num_orders)
    total_lines = int(lines_per_order.sum())
    l_orderkey = np.repeat(orderkeys, lines_per_order)
    l_orderdate = np.repeat(orderdates, lines_per_order)
    starts = np.cumsum(lines_per_order) - lines_per_order
    l_linenumber = np.arange(total_lines) - np.repeat(starts, lines_per_order) + 1

    l_partkey = rng.integers(1, num_parts + 1, total_lines)
    supp_i = rng.integers(0, 4, total_lines)
    l_suppkey = _supplier_for_part(l_partkey, 0, num_suppliers, num_parts)
    for i in range(1, 4):
        mask = supp_i == i
        l_suppkey[mask] = _supplier_for_part(l_partkey[mask], i, num_suppliers, num_parts)

    l_quantity = rng.integers(1, 51, total_lines).astype(np.float64)
    part_price = (90000 + (l_partkey / 10 % 20001) + 100 * (l_partkey % 1000)) / 100.0
    l_extendedprice = np.round(l_quantity * part_price, 2)
    l_discount = np.round(rng.integers(0, 11, total_lines) / 100.0, 2)
    l_tax = np.round(rng.integers(0, 9, total_lines) / 100.0, 2)

    l_shipdate = l_orderdate + rng.integers(1, 122, total_lines)
    l_commitdate = l_orderdate + rng.integers(30, 91, total_lines)
    l_receiptdate = l_shipdate + rng.integers(1, 31, total_lines)

    returned = l_receiptdate <= _CURRENT_DATE
    flag_draw = rng.random(total_lines) < 0.5
    l_returnflag = np.where(returned, np.where(flag_draw, "R", "A"), "N").astype(object)
    shipped = l_shipdate <= _CURRENT_DATE
    l_linestatus = np.where(shipped, "F", "O").astype(object)

    mode_idx = rng.integers(0, len(_SHIP_MODES), total_lines)
    instr_idx = rng.integers(0, len(_SHIP_INSTRUCT), total_lines)

    # Order totals and status derive from their lineitems.
    line_totals = l_extendedprice * (1 + l_tax) * (1 - l_discount)
    o_totalprice = np.zeros(num_orders)
    np.add.at(o_totalprice, np.repeat(np.arange(num_orders), lines_per_order), line_totals)
    fully_shipped = np.ones(num_orders, dtype=bool)
    none_shipped = np.ones(num_orders, dtype=bool)
    order_idx = np.repeat(np.arange(num_orders), lines_per_order)
    np.logical_and.at(fully_shipped, order_idx, l_linestatus == "F")
    np.logical_and.at(none_shipped, order_idx, l_linestatus == "O")
    o_status = np.where(fully_shipped, "F", np.where(none_shipped, "O", "P")).astype(object)

    o_comments = _comments(rng, num_orders).to_pylist()
    # Q13 pattern: a slice of orders mention "special ... requests".
    special = rng.random(num_orders) < 0.01
    for i in np.flatnonzero(special):
        o_comments[i] = "the special packages wake requests above the"

    prio_vocab = np.asarray(_PRIORITIES, dtype=object)
    orders = Table(
        TPCH_SCHEMAS["orders"],
        [
            column_from_pylist(orderkeys.tolist(), INT64),
            column_from_pylist(custkeys.tolist(), INT64),
            Column.from_strings(list(o_status)),
            Column(FLOAT64, np.round(o_totalprice, 2)),
            Column(DATE32, orderdates.astype(np.int32)),
            Column.from_strings(list(prio_vocab[priorities])),
            _strings([f"Clerk#{c:09d}" for c in rng.integers(1, max(int(1000 * sf), 2), num_orders)]),
            column_from_pylist([0] * num_orders, INT64),
            Column.from_strings(o_comments),
        ],
    )

    mode_vocab = np.asarray(_SHIP_MODES, dtype=object)
    instr_vocab = np.asarray(_SHIP_INSTRUCT, dtype=object)
    rng_l = np.random.default_rng(seed + 8)
    lineitem = Table(
        TPCH_SCHEMAS["lineitem"],
        [
            column_from_pylist(l_orderkey.tolist(), INT64),
            column_from_pylist(l_partkey.tolist(), INT64),
            column_from_pylist(l_suppkey.tolist(), INT64),
            column_from_pylist(l_linenumber.tolist(), INT64),
            Column(FLOAT64, l_quantity),
            Column(FLOAT64, l_extendedprice),
            Column(FLOAT64, l_discount),
            Column(FLOAT64, l_tax),
            Column.from_strings(list(l_returnflag)),
            Column.from_strings(list(l_linestatus)),
            Column(DATE32, l_shipdate.astype(np.int32)),
            Column(DATE32, l_commitdate.astype(np.int32)),
            Column(DATE32, l_receiptdate.astype(np.int32)),
            Column.from_strings(list(instr_vocab[instr_idx])),
            Column.from_strings(list(mode_vocab[mode_idx])),
            _comments(rng_l, total_lines, words=3),
        ],
    )
    return orders, lineitem


def _phone(rng: np.random.Generator, nationkey: int) -> str:
    return (
        f"{nationkey + 10}-{rng.integers(100, 1000)}-"
        f"{rng.integers(100, 1000)}-{rng.integers(1000, 10000)}"
    )


def _address(rng: np.random.Generator) -> str:
    length = int(rng.integers(8, 20))
    chars = "abcdefghijklmnopqrstuvwxyz0123456789 ,"
    return "".join(chars[i] for i in rng.integers(0, len(chars), length))
