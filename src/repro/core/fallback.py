"""Graceful CPU fallback (§3.2.2).

Sirius "includes a graceful fallback mechanism to the host database
systems in the case of an error or missing features".  The engine wraps
GPU execution; on :class:`UnsupportedFeatureError`,
:class:`UnsupportedExpressionError`, or device OOM (when spilling is
disabled) it re-executes the plan through a host-provided callback and
records the event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..columnar import Table
from ..gpu.memory import OutOfDeviceMemory
from ..plan import Plan
from .expr_eval import UnsupportedExpressionError
from .operators.base import UnsupportedFeatureError

__all__ = ["FallbackHandler", "FallbackEvent"]

FALLBACK_EXCEPTIONS = (UnsupportedFeatureError, UnsupportedExpressionError, OutOfDeviceMemory)


@dataclass
class FallbackEvent:
    """Record of one query that fell back to the host engine."""

    reason: str
    exception_type: str


@dataclass
class FallbackHandler:
    """Wraps GPU execution with a host-engine escape hatch."""

    host_executor: Callable[[Plan], Table] | None = None
    events: list[FallbackEvent] = field(default_factory=list)

    def run(self, gpu_execute: Callable[[], Table], plan: Plan) -> tuple[Table, bool]:
        """Run ``gpu_execute``; fall back to the host on known failures.

        Returns:
            ``(result, fell_back)``.

        Raises:
            The original exception if no host executor is registered, or
            any exception outside the fallback set (bugs must surface).
        """
        try:
            return gpu_execute(), False
        except FALLBACK_EXCEPTIONS as exc:
            self.events.append(FallbackEvent(str(exc), type(exc).__name__))
            if self.host_executor is None:
                raise
            return self.host_executor(plan), True

    @property
    def fallback_count(self) -> int:
        return len(self.events)
