"""Graceful degradation tiers (§3.2.2, extended with a fault model).

Sirius "includes a graceful fallback mechanism to the host database
systems in the case of an error or missing features".  The engine wraps
GPU execution; recoverable failures walk an ordered ladder of
:class:`DegradationTier`\\ s instead of jumping straight to the host:

1. ``gpu-retry-spill`` — device OOM only: re-run on the GPU with buffer
   spilling enabled and batched out-of-core execution (§3.4);
2. ``cpu-pipeline`` — re-run this pipeline/fragment on the node's CPU
   while the rest of the query stays on the GPU (wired by hosts that
   execute fragment-at-a-time, e.g. MiniDoris);
3. ``cpu-plan`` — the seed behaviour: re-execute the whole plan through
   the registered host executor;
4. raise — no tier could absorb the failure.

Exactly **one** :class:`FallbackEvent` is recorded per degraded query —
carrying the original error, the tier that finally absorbed it, and every
tier attempted along the way — so ``fallback_count`` still counts queries,
not attempts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from ..columnar import Table
from ..gpu.device import TransientKernelError
from ..gpu.memory import OutOfDeviceMemory
from ..obs import NULL_TRACER
from ..plan import Plan
from .expr_eval import UnsupportedExpressionError
from .operators.base import UnsupportedFeatureError

__all__ = [
    "FallbackHandler",
    "FallbackEvent",
    "DegradationTier",
    "FALLBACK_EXCEPTIONS",
    "predict_tier",
]

FALLBACK_EXCEPTIONS = (
    UnsupportedFeatureError,
    UnsupportedExpressionError,
    OutOfDeviceMemory,
    TransientKernelError,
)


def plan_fingerprint(plan: Plan) -> str:
    """Short stable identifier for a plan (sha1 of its JSON form)."""
    try:
        return hashlib.sha1(plan.to_json().encode("utf-8")).hexdigest()[:12]
    except Exception:
        return "unknown"


def predict_tier(plan: Plan, catalog=None, device=None) -> str:
    """Statically predict the degradation tier ``plan`` will need.

    The runtime ladder below discovers the right tier by *failing
    through* it; this asks the plan analyzer up front, so admission can
    reject or pre-degrade a query before any GPU memory is committed.
    Returns ``"gpu"`` (happy path), ``"gpu-retry-spill"``, ``"cpu-plan"``,
    or ``"reject"`` (the plan cannot execute at all).
    """
    # Imported lazily: repro.analysis imports this module (and, through
    # the estimator, most of repro.sched) at load time.
    from ..analysis import analyze_plan

    return analyze_plan(plan, catalog, device).suggested_tier


@dataclass(frozen=True)
class DegradationTier:
    """One rung of the degradation ladder.

    Attributes:
        name: Tier label recorded in events (e.g. ``"gpu-retry-spill"``).
        handler: ``(plan, original_exception) -> Table``; may itself raise
            a fallback exception, which passes control to the next tier.
        triggers: Exception types this tier can absorb; the tier is
            skipped when the original failure is not an instance.
        gpu_result: True when the tier still produces its result on the
            GPU (so the engine's query profile remains valid).
    """

    name: str
    handler: Callable[[Plan, BaseException], Table]
    triggers: tuple = FALLBACK_EXCEPTIONS
    gpu_result: bool = False


@dataclass
class FallbackEvent:
    """Record of one query that degraded off the happy path.

    ``memory_watermark`` is the processing-pool bytes in use when the
    event was recorded (how full the pool was at the failure) and
    ``spill_bytes_attempted`` the total bytes the engine had spilled
    trying to stay on the GPU — both ``None`` when the engine has no
    memory probe wired (e.g. a bare handler under test)."""

    reason: str
    exception_type: str
    tier: str = "cpu-plan"  # tier that absorbed the failure ("raise" = none)
    tiers_attempted: tuple = ()
    plan_fingerprint: str = "unknown"
    sim_time: float | None = None
    memory_watermark: int | None = None
    spill_bytes_attempted: int | None = None


@dataclass
class FallbackHandler:
    """Wraps GPU execution with the tiered degradation ladder."""

    host_executor: Callable[[Plan], Table] | None = None
    events: list[FallbackEvent] = field(default_factory=list)
    # Observability sink; every recorded FallbackEvent is mirrored as a
    # span event carrying the tier label and the ladder walked.
    tracer: object = NULL_TRACER
    # Optional ``() -> {"memory_watermark": int, "spill_bytes_attempted": int}``
    # sampled at record time so every event says how full the pool was and
    # how much spilling was tried before degrading (None fields otherwise).
    memory_probe: Callable[[], dict] | None = None

    def run(
        self,
        gpu_execute: Callable[[], Table],
        plan: Plan,
        tiers: tuple = (),
        clock=None,
    ) -> tuple[Table, DegradationTier | None]:
        """Run ``gpu_execute``; walk the degradation tiers on known failures.

        ``tiers`` are tried in order; the registered ``host_executor`` (if
        any) is appended as the final ``cpu-plan`` tier.  One event is
        recorded per degraded query regardless of how many tiers ran.

        Returns:
            ``(result, tier)`` — ``tier`` is ``None`` on the happy path,
            else the :class:`DegradationTier` that produced the result.

        Raises:
            The original exception if no tier absorbed it, or any
            exception outside the fallback set (bugs must surface).
        """
        try:
            return gpu_execute(), None
        except FALLBACK_EXCEPTIONS as exc:
            original = exc

        ladder = list(tiers)
        if self.host_executor is not None:
            ladder.append(
                DegradationTier(
                    "cpu-plan", lambda p, _exc: self.host_executor(p), FALLBACK_EXCEPTIONS
                )
            )
        attempted: list[str] = []
        for tier in ladder:
            if not isinstance(original, tier.triggers):
                continue
            attempted.append(tier.name)
            try:
                result = tier.handler(plan, original)
            except FALLBACK_EXCEPTIONS:
                continue  # this tier could not absorb it either; next rung
            self._record(original, plan, tier.name, attempted, clock)
            return result, tier
        self._record(original, plan, "raise", attempted, clock)
        raise original

    def _record(self, exc, plan, tier: str, attempted: list, clock) -> None:
        memory = self.memory_probe() if self.memory_probe is not None else {}
        self.events.append(
            FallbackEvent(
                reason=str(exc),
                exception_type=type(exc).__name__,
                tier=tier,
                tiers_attempted=tuple(attempted),
                plan_fingerprint=plan_fingerprint(plan),
                sim_time=clock.now if clock is not None else None,
                memory_watermark=memory.get("memory_watermark"),
                spill_bytes_attempted=memory.get("spill_bytes_attempted"),
            )
        )
        self.tracer.event(
            "fallback",
            sim_time=clock.now if clock is not None else 0.0,
            tier=tier,
            tiers_attempted=tuple(attempted),
            exception=type(exc).__name__,
        )

    @property
    def fallback_count(self) -> int:
        return len(self.events)

    def summary(self) -> str:
        """Human-readable degradation report (one line per tier)."""
        if not self.events:
            return "no degraded queries"
        by_tier: dict[str, list[FallbackEvent]] = {}
        for event in self.events:
            by_tier.setdefault(event.tier, []).append(event)
        lines = [f"{len(self.events)} degraded quer{'y' if len(self.events) == 1 else 'ies'}"]
        for tier_name in sorted(by_tier):
            group = by_tier[tier_name]
            causes: dict[str, int] = {}
            for event in group:
                causes[event.exception_type] = causes.get(event.exception_type, 0) + 1
            cause_str = ", ".join(f"{k} x{v}" for k, v in sorted(causes.items()))
            lines.append(f"  tier {tier_name}: {len(group)} ({cause_str})")
        return "\n".join(lines)
