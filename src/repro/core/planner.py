"""Physical planning: Substrait-style plans -> GPU pipelines.

Mirrors §3.2.2: the plan is divided into **pipelines** at pipeline
breakers (aggregations, sorts, and the build side of every hash join).
Each pipeline is ``source -> streaming operators -> sink``; sinks
materialise their output into named *slots* that downstream pipelines
read (as their source, or as a hash-join build table).

Fusions performed here:

* ``Fetch(Sort(x))`` -> a single top-N sink;
* ``Exchange`` relations are pass-through in single-node plans (the paper:
  the exchange layer "can be bypassed entirely") — distributed fragments
  replace them with exchange sinks/sources before reaching this planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..plan import (
    AggregateRel,
    ExchangeRel,
    FetchRel,
    FilterRel,
    JoinRel,
    Plan,
    ProjectRel,
    ReadRel,
    Relation,
    SortRel,
)
from .operators.aggregate import GlobalAggSink, GroupBySink, PartitionedGroupBySink
from .operators.base import SinkOperator, SourceOperator, StreamingOperator, UnsupportedFeatureError
from .operators.join import (
    HashJoinBuildSink,
    HashJoinProbe,
    PartitionedHashJoinBuildSink,
    PartitionedHashJoinProbe,
)
from .expr_eval import UnsupportedExpressionError
from .operators.fused import FusedOp
from .operators.scan import IntermediateSource, TableScan
from .operators.sort import FetchSink, MaterializeSink, SortSink, TopNSink
from .operators.streaming import FilterOp, ProjectOp

__all__ = ["Pipeline", "PhysicalPlan", "compile_plan", "fuse_operators"]

RESULT_SLOT = "__result__"


@dataclass
class Pipeline:
    """One schedulable unit: a source, streaming operators, and a sink."""

    pid: int
    source: SourceOperator
    operators: list[StreamingOperator]
    sink: SinkOperator
    output_slot: str
    dependencies: set[int] = field(default_factory=set)

    def used_slots(self) -> list[str]:
        """Slots this pipeline reads (its source and any probe builds)."""
        slots = []
        if isinstance(self.source, IntermediateSource):
            slots.append(self.source.slot)
        for op in self.operators:
            if isinstance(op, HashJoinProbe):
                slots.append(op.build_slot)
        return slots

    def describe(self) -> str:
        chain = " -> ".join(
            [self.source.describe()] + [o.describe() for o in self.operators] + [self.sink.describe()]
        )
        deps = f" (after {sorted(self.dependencies)})" if self.dependencies else ""
        return f"P{self.pid}: {chain} => {self.output_slot}{deps}"


@dataclass
class PhysicalPlan:
    """All pipelines of a query plus slot bookkeeping."""

    pipelines: list[Pipeline]
    final_slot: str
    # Compiled with the partitioned/spillable operator variants; tells the
    # executor to run its chunk-disposal protocol so dead intermediates do
    # not accumulate in the processing pool for the lifetime of the query.
    out_of_core: bool = False
    # Streaming runs were collapsed into FusedOp regions (fuse_operators).
    fusion: bool = False

    def explain(self) -> str:
        return "\n".join(p.describe() for p in self.pipelines)

    def slot_consumers(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for p in self.pipelines:
            for slot in p.used_slots():
                counts[slot] = counts.get(slot, 0) + 1
        return counts


class _Compiler:
    def __init__(
        self,
        out_of_core: bool = False,
        partition_budget_bytes: int | None = None,
        ooc_fanout: int = 8,
        ooc_max_depth: int = 3,
    ):
        self.pipelines: list[Pipeline] = []
        self._next_slot = 0
        # Out-of-core mode swaps keyed joins / group-bys for their radix-
        # partitioned spillable variants; off (the default) compiles the
        # exact same operator tree as always.
        self.out_of_core = out_of_core
        self.partition_budget_bytes = partition_budget_bytes
        self.ooc_fanout = ooc_fanout
        self.ooc_max_depth = ooc_max_depth

    def fresh_slot(self, hint: str) -> str:
        self._next_slot += 1
        return f"{hint}_{self._next_slot}"

    def add_pipeline(self, source, operators, sink, slot, deps) -> int:
        pid = len(self.pipelines)
        self.pipelines.append(Pipeline(pid, source, operators, sink, slot, set(deps)))
        return pid

    # Returns (source, streaming_ops, deps) for a sub-tree that has NOT yet
    # been terminated by a sink.
    def compile(self, rel: Relation):
        if isinstance(rel, ReadRel):
            scan = TableScan(rel.table_name, rel.base_schema, rel.projection, rel.filter_expr)
            return scan, [], set()

        if isinstance(rel, FilterRel):
            source, ops, deps = self.compile(rel.input_rel)
            ops.append(FilterOp(rel.condition, rel.input_rel.output_schema()))
            return source, ops, deps

        if isinstance(rel, ProjectRel):
            source, ops, deps = self.compile(rel.input_rel)
            ops.append(ProjectOp(rel.expressions, rel.names, rel.output_schema()))
            return source, ops, deps

        if isinstance(rel, JoinRel):
            # Build side (right) becomes its own pipeline.
            build_schema = rel.right.output_schema()
            build_slot = self.fresh_slot("build")
            b_source, b_ops, b_deps = self.compile(rel.right)
            partitioned = self.out_of_core and bool(rel.right_keys)
            if partitioned:
                build_sink = PartitionedHashJoinBuildSink(
                    build_slot,
                    build_schema,
                    rel.right_keys,
                    num_partitions=self.ooc_fanout,
                    partition_budget_bytes=self.partition_budget_bytes,
                    max_depth=self.ooc_max_depth,
                )
            else:
                build_sink = HashJoinBuildSink(build_slot, build_schema)
            build_pid = self.add_pipeline(b_source, b_ops, build_sink, build_slot, b_deps)
            # Probe side continues the current pipeline.
            source, ops, deps = self.compile(rel.left)
            probe_cls = PartitionedHashJoinProbe if partitioned else HashJoinProbe
            ops.append(
                probe_cls(
                    build_slot,
                    rel.join_type,
                    rel.left_keys,
                    rel.right_keys,
                    rel.left.output_schema(),
                    build_schema,
                    rel.post_filter,
                )
            )
            deps = deps | {build_pid}
            return source, ops, deps

        if isinstance(rel, AggregateRel):
            schema = rel.input_rel.output_schema()
            if rel.group_indices:
                if self.out_of_core:
                    sink = PartitionedGroupBySink(
                        rel.group_indices,
                        rel.measures,
                        schema,
                        slot=self.fresh_slot("oocagg"),
                        num_partitions=self.ooc_fanout,
                        partition_budget_bytes=self.partition_budget_bytes,
                        max_depth=self.ooc_max_depth,
                    )
                else:
                    sink = GroupBySink(rel.group_indices, rel.measures, schema)
            else:
                sink = GlobalAggSink(rel.measures, schema)
            return self._break(rel.input_rel, sink, "agg")

        if isinstance(rel, FetchRel) and isinstance(rel.input_rel, SortRel):
            sort_rel = rel.input_rel
            if rel.count is None and rel.offset == 0:
                sink = SortSink(sort_rel.sort_keys, sort_rel.input_rel.output_schema())
                return self._break(sort_rel.input_rel, sink, "topn")
            if rel.count is not None:
                sink = TopNSink(
                    sort_rel.sort_keys, rel.count, rel.offset, sort_rel.input_rel.output_schema()
                )
                return self._break(sort_rel.input_rel, sink, "topn")
            # OFFSET without LIMIT: sort fully, then slice in a fetch sink.

        if isinstance(rel, SortRel):
            sink = SortSink(rel.sort_keys, rel.input_rel.output_schema())
            return self._break(rel.input_rel, sink, "sort")

        if isinstance(rel, FetchRel):
            sink = FetchSink(rel.offset, rel.count, rel.input_rel.output_schema())
            return self._break(rel.input_rel, sink, "fetch")

        if isinstance(rel, ExchangeRel):
            # Single-node: bypass entirely.
            return self.compile(rel.input_rel)

        raise UnsupportedFeatureError(f"no physical operator for {type(rel).__name__}")

    def _break(self, input_rel: Relation, sink: SinkOperator, hint: str):
        """Terminate the input sub-tree into ``sink`` and continue from the
        materialised slot."""
        slot = self.fresh_slot(hint)
        source, ops, deps = self.compile(input_rel)
        pid = self.add_pipeline(source, ops, sink, slot, deps)
        return IntermediateSource(slot, sink.output_schema()), [], {pid}


def fuse_operators(operators: "list[StreamingOperator]") -> "list[StreamingOperator]":
    """Collapse maximal runs of adjacent Filter/Project operators into
    :class:`FusedOp` regions, hoisting eligible join residual filters.

    Legality rules:

    * only ``FilterOp``/``ProjectOp`` fuse — anything stateful or
      one-to-many (probes) is a fusion barrier;
    * a :class:`HashJoinProbe` residual ``post_filter`` hoists into the
      following fused run only for ``inner``/``left`` joins, where the
      unfused path applies it as a plain mask over the join output.
      Semi/anti residuals are *not* hoistable — there the predicate is
      entangled with the join semantics (filter the matched pairs, then
      reduce to distinct probe rows) — and neither are partitioned
      (out-of-core) probes, whose residual runs per leaf before the
      emitted chunks are re-coalesced under the partition budget;
    * an expression the compiler cannot lower leaves its run unfused
      (the interpreter path would reject it identically at run time, so
      this preserves the engine's fallback behaviour).
    """
    fused: list[StreamingOperator] = []
    run: list[StreamingOperator] = []

    def flush() -> None:
        if not run:
            return
        try:
            fused.append(FusedOp(run[:]))
        except UnsupportedExpressionError:
            fused.extend(run)
        run.clear()

    for op in operators:
        if type(op) in (FilterOp, ProjectOp):
            run.append(op)
            continue
        flush()
        if (
            type(op) is HashJoinProbe
            and op.post_filter is not None
            and op.join_type in ("inner", "left")
        ):
            fused.append(
                HashJoinProbe(
                    op.build_slot,
                    op.join_type,
                    op.probe_key_indices,
                    op.build_key_indices,
                    op.probe_schema,
                    op.build_schema,
                    post_filter=None,
                )
            )
            run.append(FilterOp(op.post_filter, op.output_schema()))
            continue
        fused.append(op)
    flush()
    return fused


def compile_plan(
    plan: Plan,
    out_of_core: bool = False,
    partition_budget_bytes: int | None = None,
    ooc_fanout: int = 8,
    ooc_max_depth: int = 3,
    fusion: bool = False,
) -> PhysicalPlan:
    """Compile a validated plan into pipelines ending in a result slot.

    With ``out_of_core=True``, keyed hash joins and group-bys compile to
    their radix-partitioned variants whose state lives in spillable
    buffer-manager fragments (device -> pinned host -> disk) instead of
    resident tables; the default compiles the seed operator tree
    unchanged.

    With ``fusion=True``, each pipeline's streaming run is post-processed
    by :func:`fuse_operators`; the default leaves the operator lists
    byte-identical to the seed planner.
    """
    compiler = _Compiler(
        out_of_core=out_of_core,
        partition_budget_bytes=partition_budget_bytes,
        ooc_fanout=ooc_fanout,
        ooc_max_depth=ooc_max_depth,
    )
    source, ops, deps = compiler.compile(plan.root)
    compiler.add_pipeline(
        source, ops, MaterializeSink(plan.root.output_schema()), RESULT_SLOT, deps
    )
    if fusion:
        for pipeline in compiler.pipelines:
            pipeline.operators = fuse_operators(pipeline.operators)
    return PhysicalPlan(
        compiler.pipelines, RESULT_SLOT, out_of_core=out_of_core, fusion=fusion
    )
