"""Compilation of plan expressions into reusable vectorized closures.

:mod:`repro.core.expr_eval` walks the expression tree once per chunk,
re-dispatching every node through ``isinstance`` checks and re-parsing
call options (LIKE patterns, cast targets, substring offsets) each time.
The fused pipeline path instead **compiles** each expression once per
pipeline: :func:`compile_expression` resolves the dispatch at compile
time and hoists all constant option parsing, returning a closure that
only performs the per-chunk kernel calls.

The closures invoke exactly the same kernels with the same arguments as
the interpreter, so compiled results are bit-identical to
:func:`~repro.core.expr_eval.evaluate` by construction — this is what
the fused==unfused equivalence gate relies on.

Common-subexpression elimination: every node is keyed by the stable
digest of its ``to_dict()`` form and memoised in a caller-owned ``cache``
dict, so a subtree shared between a filter predicate and a later
projection in the same fused run evaluates once.  A cache is only valid
for one *table epoch* — the caller must supply a fresh dict whenever the
chunk object changes (after a compaction or projection), because cached
``GColumn`` results are positional.
"""

from __future__ import annotations

import json
from typing import Any, Callable

import numpy as np

from ..columnar.dtypes import DType, dtype_from_name
from ..kernels import (
    GColumn,
    GTable,
    absolute,
    binary_arith,
    case_when,
    cast_column,
    coalesce,
    compare,
    concat_strings,
    contains as contains_kernel,
    extract_date_part,
    fill_constant,
    in_list,
    is_null,
    like,
    logical_and,
    logical_not,
    logical_or,
    round_column,
    string_case,
    string_length,
    substring,
)
from ..plan import Expression, FieldRef, Literal, ScalarCall
from .expr_eval import (
    UnsupportedExpressionError,
    _fold_scalar_arith,
    _fold_scalar_cmp,
    _literal_value,
)

__all__ = [
    "CompiledFn",
    "compile_expression",
    "compile_predicate",
    "compile_projection",
    "expression_digest",
]

# A compiled node: (table, cache) -> GColumn | scalar.
CompiledFn = Callable[[GTable, dict], Any]

_MISS = object()


def expression_digest(expr: Expression) -> str:
    """Stable structural key for CSE caching (and closure-cache keying)."""
    return json.dumps(expr.to_dict(), sort_keys=True, default=str)


def compile_expression(expr: Expression) -> CompiledFn:
    """Compile ``expr`` to a closure over ``(table, cache)``.

    Raises :class:`UnsupportedExpressionError` at compile time for any
    node the interpreter would reject at run time, so planner passes can
    decline fusion before execution starts.
    """
    if isinstance(expr, FieldRef):
        index = expr.index
        return lambda table, cache: table.columns[index]
    if isinstance(expr, Literal):
        value = expr.value
        return lambda table, cache: value
    if isinstance(expr, ScalarCall):
        return _memoised(expr, _compile_call(expr))
    raise UnsupportedExpressionError(f"cannot compile {expr!r} for device execution")


def compile_predicate(expr: Expression) -> Callable[[GTable, dict], np.ndarray]:
    """Compile a boolean expression to a keep-mask closure (NULL -> False);
    mirrors :func:`~repro.core.expr_eval.evaluate_predicate`."""
    node = compile_expression(expr)

    def run(table: GTable, cache: dict) -> np.ndarray:
        result = node(table, cache)
        if not isinstance(result, GColumn):
            return np.full(table.num_rows, bool(result), dtype=np.bool_)
        return result.data.astype(np.bool_) & result.valid_mask()

    return run


def compile_projection(expr: Expression, dtype: DType | None = None) -> CompiledFn:
    """Compile a projection expression, materialising bare scalars with
    the planner-typed ``dtype`` (mirrors
    :func:`~repro.core.expr_eval.evaluate_to_column`)."""
    node = compile_expression(expr)

    def run(table: GTable, cache: dict) -> GColumn:
        result = node(table, cache)
        if isinstance(result, GColumn):
            return result
        return fill_constant(table.device, table.num_rows, result, dtype=dtype)

    return run


def _memoised(expr: ScalarCall, inner: CompiledFn) -> CompiledFn:
    key = expression_digest(expr)

    def run(table: GTable, cache: dict):
        hit = cache.get(key, _MISS)
        if hit is not _MISS:
            return hit
        value = inner(table, cache)
        cache[key] = value
        return value

    return run


def _as_column(node: CompiledFn) -> CompiledFn:
    def run(table: GTable, cache: dict) -> GColumn:
        value = node(table, cache)
        if isinstance(value, GColumn):
            return value
        return fill_constant(table.device, table.num_rows, value)

    return run


def _compile_call(call: ScalarCall) -> CompiledFn:
    """One branch per scalar function, mirroring ``expr_eval._call`` with
    the dispatch and option parsing hoisted to compile time."""
    f = call.func

    if f in ("add", "subtract", "multiply", "divide", "modulo"):
        left = compile_expression(call.args[0])
        right = compile_expression(call.args[1])

        def run(table, cache):
            lv = left(table, cache)
            rv = right(table, cache)
            if not isinstance(lv, GColumn) and not isinstance(rv, GColumn):
                return _fold_scalar_arith(f, lv, rv)
            return binary_arith(f, lv, rv)

        return run

    if f in ("eq", "ne", "lt", "le", "gt", "ge"):
        left = compile_expression(call.args[0])
        right = compile_expression(call.args[1])

        def run(table, cache):
            lv = left(table, cache)
            rv = right(table, cache)
            if not isinstance(lv, GColumn) and not isinstance(rv, GColumn):
                return _fold_scalar_cmp(f, lv, rv)
            return compare(f, lv, rv)

        return run

    if f in ("and", "or"):
        left = compile_expression(call.args[0])
        right = compile_expression(call.args[1])
        kernel = logical_and if f == "and" else logical_or

        def run(table, cache, _kernel=kernel, _both=(f == "and")):
            lv = left(table, cache)
            rv = right(table, cache)
            if not isinstance(lv, GColumn) and not isinstance(rv, GColumn):
                return (bool(lv) and bool(rv)) if _both else (bool(lv) or bool(rv))
            return _kernel(lv, rv)

        return run

    if f == "not":
        operand = compile_expression(call.args[0])

        def run(table, cache):
            value = operand(table, cache)
            if not isinstance(value, GColumn):
                return None if value is None else not bool(value)
            return logical_not(value)

        return run

    if f == "negate":
        operand = compile_expression(call.args[0])

        def run(table, cache):
            value = operand(table, cache)
            if not isinstance(value, GColumn):
                return None if value is None else -value
            return binary_arith("multiply", value, -1)

        return run

    if f in ("is_null", "is_not_null"):
        operand = _as_column(compile_expression(call.args[0]))
        negate = f == "is_not_null"
        return lambda table, cache: is_null(operand(table, cache), negate=negate)

    if f in ("like", "not_like"):
        operand = _as_column(compile_expression(call.args[0]))
        pattern = _literal_value(call.args[1], "LIKE pattern")
        negate = f == "not_like"
        escape = call.options.get("escape")
        return lambda table, cache: like(
            operand(table, cache), pattern, negate=negate, escape=escape
        )

    if f == "contains":
        operand = _as_column(compile_expression(call.args[0]))
        needle = _literal_value(call.args[1], "contains needle")
        return lambda table, cache: contains_kernel(operand(table, cache), needle)

    if f == "starts_with":
        operand = _as_column(compile_expression(call.args[0]))
        prefix = _literal_value(call.args[1], "starts_with prefix")
        return lambda table, cache: like(operand(table, cache), f"{prefix}%")

    if f in ("in", "not_in"):
        operand = _as_column(compile_expression(call.args[0]))
        values = [_literal_value(a, "IN list element") for a in call.args[1:]]
        negated = f == "not_in"

        def run(table, cache):
            result = in_list(operand(table, cache), values)
            return logical_not(result) if negated else result

        return run

    if f == "between":
        column = compile_expression(call.args[0])
        low = compile_expression(call.args[1])
        high = compile_expression(call.args[2])

        def run(table, cache):
            value = column(table, cache)
            return logical_and(
                compare("ge", value, low(table, cache)),
                compare("le", value, high(table, cache)),
            )

        return run

    if f == "case":
        pairs = call.args[:-1]
        conditions = [
            _as_column(compile_expression(pairs[i])) for i in range(0, len(pairs), 2)
        ]
        results = [
            compile_expression(pairs[i + 1]) for i in range(0, len(pairs), 2)
        ]
        default = compile_expression(call.args[-1])

        def run(table, cache):
            return case_when(
                [c(table, cache) for c in conditions],
                [r(table, cache) for r in results],
                default(table, cache),
            )

        return run

    if f == "coalesce":
        operands = [compile_expression(a) for a in call.args]

        def run(table, cache):
            values = [o(table, cache) for o in operands]
            if not any(isinstance(v, GColumn) for v in values):
                return next((v for v in values if v is not None), None)
            return coalesce(values)

        return run

    if f in ("upper", "lower"):
        operand = _as_column(compile_expression(call.args[0]))
        upper = f == "upper"
        return lambda table, cache: string_case(operand(table, cache), upper=upper)

    if f == "length":
        operand = _as_column(compile_expression(call.args[0]))
        return lambda table, cache: string_length(operand(table, cache))

    if f == "concat":
        operands = [compile_expression(a) for a in call.args]

        def run(table, cache):
            values = [o(table, cache) for o in operands]
            if not any(isinstance(v, GColumn) for v in values):
                if any(v is None for v in values):
                    return None
                return "".join(str(v) for v in values)
            return concat_strings(values)

        return run

    if f == "abs":
        operand = compile_expression(call.args[0])

        def run(table, cache):
            value = operand(table, cache)
            if not isinstance(value, GColumn):
                return None if value is None else abs(value)
            return absolute(value)

        return run

    if f == "round":
        digits = (
            int(_literal_value(call.args[1], "round digits"))
            if len(call.args) > 1
            else 0
        )
        operand = compile_expression(call.args[0])

        def run(table, cache):
            value = operand(table, cache)
            if not isinstance(value, GColumn):
                return None if value is None else float(round(float(value), digits))
            return round_column(value, digits)

        return run

    if f == "cast":
        target = dtype_from_name(call.options["to"])
        operand = _as_column(compile_expression(call.args[0]))
        return lambda table, cache: cast_column(operand(table, cache), target)

    if f in ("extract_year", "extract_month", "extract_day"):
        part = f.removeprefix("extract_")
        operand = _as_column(compile_expression(call.args[0]))
        return lambda table, cache: extract_date_part(part, operand(table, cache))

    if f == "substring":
        start = int(
            call.options["start"]
            if "start" in call.options
            else _literal_value(call.args[1], "substring start")
        )
        length = int(
            call.options["length"]
            if "length" in call.options
            else _literal_value(call.args[2], "substring length")
        )
        operand = _as_column(compile_expression(call.args[0]))
        return lambda table, cache: substring(operand(table, cache), start, length)

    raise UnsupportedExpressionError(f"scalar function {f!r} not supported on device")
