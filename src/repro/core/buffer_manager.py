"""Sirius' buffer manager (§3.2.3 of the paper).

Responsibilities reproduced here:

* **Data caching region** — pre-allocated device memory holding input
  tables.  The first (cold) access to a host table pays the host->device
  copy; subsequent (hot) accesses are free, which is the paper's
  measurement methodology ("the numbers reported are the hot runs").
* **Data processing region** — the RMM pool on the device; kernels already
  allocate from it via :class:`~repro.gpu.device.Device`.
* **Format conversions** — Sirius uses ``uint64`` row ids while libcudf
  uses ``int32``; converting between them is the one non-zero-copy step
  and is charged as a streaming kernel here.  Host<->device table format
  conversion is a deep copy that happens on the cold run only.
* **Out-of-core extension (§3.4)** — when the caching region cannot hold a
  table, the manager spills the least-recently-used cached tables to
  *pinned host memory*; reading a spilled table later streams it back over
  the interconnect (slower, but execution proceeds instead of failing).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..columnar import Table
from ..gpu.costmodel import KernelClass
from ..gpu.device import Device
from ..gpu.memory import OutOfDeviceMemory
from ..kernels import GTable

__all__ = ["BufferManager", "CacheEntry"]


class CacheEntry:
    """A cached table: either device-resident or spilled to pinned host."""

    __slots__ = (
        "name",
        "gtable",
        "host_table",
        "nbytes",
        "location",
        "compressed",
        "logical_nbytes",
        "last_user",
    )

    def __init__(self, name: str, gtable: GTable, host_table: Table, compressed: bool = False):
        self.name = name
        self.gtable = gtable
        self.host_table = host_table
        self.nbytes = gtable.nbytes  # accounted (packed when compressed)
        self.logical_nbytes = host_table.nbytes
        self.location = "device"
        self.compressed = compressed
        # Query that touched the entry last (device.query_owner); used by
        # contention-aware eviction under concurrent serving.
        self.last_user = None


class BufferManager:
    """Owns the caching region contents and the format-conversion paths."""

    def __init__(self, device: Device, enable_spill: bool = True, compress_cache: bool = False):
        """
        Args:
            device: The owning device.
            enable_spill: Spill LRU tables to pinned host memory when the
                caching region fills (§3.4 out-of-core extension).
            compress_cache: Store integer/date columns FOR+bit-packed in
                the caching region (§3.4's lightweight-compression
                extension): smaller footprint and cheaper cold loads, at
                the price of a decompression pass on every access.
        """
        self.device = device
        self.enable_spill = enable_spill
        self.compress_cache = compress_cache
        self._cache: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.cold_loads = 0
        self.hot_hits = 0
        self.spills = 0
        self.unspills = 0
        self.pinned_host_bytes = 0
        self.compressed_saved_bytes = 0
        # Contention-aware spill (multi-query serving): when the scheduler
        # installs its live-query set here, eviction prefers LRU entries
        # whose last user is *not* an in-flight query, so one query's cold
        # load does not thrash tables another admitted query is actively
        # scanning.  None (default) = plain LRU, identical to the seed.
        self.active_queries: set | None = None
        self.contention_avoided_evictions = 0

    # -- caching region -------------------------------------------------------

    def get_table(self, name: str, host_table: Table) -> GTable:
        """Return the device-resident table, loading/caching on first use."""
        entry = self._cache.get(name)
        if entry is not None:
            self._cache.move_to_end(name)
            entry.last_user = self.device.query_owner
            if entry.location == "pinned":
                self._unspill(entry)
            if entry.compressed:
                # Decompression pass: packed bytes in, logical bytes out.
                self.device.launch(
                    KernelClass.STREAM,
                    entry.nbytes,
                    entry.logical_nbytes,
                    entry.gtable.num_rows,
                )
            self.hot_hits += 1
            return entry.gtable
        gtable = self._load(name, host_table)
        entry = CacheEntry(name, gtable, host_table, compressed=self.compress_cache)
        entry.last_user = self.device.query_owner
        self._cache[name] = entry
        self.cold_loads += 1
        return gtable

    def _load(self, name: str, host_table: Table) -> GTable:
        """Cold path: deep-copy the host table into the caching region."""
        while True:
            try:
                if self.compress_cache:
                    return self._load_compressed(host_table)
                return GTable.from_host(self.device, host_table, region="caching")
            except OutOfDeviceMemory:
                if not self._evict_one():
                    raise

    def _load_compressed(self, host_table: Table) -> GTable:
        """Load with FOR+bit-packing applied to the packable columns."""
        from ..kernels import GColumn
        from ..kernels.compression import pack_column, packable

        columns = []
        try:
            for col in host_table.columns:
                if packable(col):
                    packed = pack_column(col)
                    self.device.htod(packed.packed_nbytes)  # compressed wire
                    buf = self.device.new_buffer(
                        col.data, "caching", account_nbytes=packed.packed_nbytes
                    )
                    self.compressed_saved_bytes += col.nbytes - packed.packed_nbytes
                    columns.append(GColumn(col.dtype, buf, None, col.dictionary))
                else:
                    columns.append(GColumn.from_host(self.device, col, "caching"))
        except BaseException:
            for column in columns:
                column.free()
            raise
        return GTable(host_table.schema, columns, self.device)

    def _evict_one(self) -> bool:
        """Spill one device-resident entry to make room; False if none.

        Plain LRU in single-query mode.  Under concurrent serving
        (``active_queries`` installed) the first pass prefers LRU entries
        last touched by a query that is no longer in flight; only when
        every resident table belongs to a live query does it fall back to
        plain LRU (progress beats fairness).
        """
        if not self.enable_spill:
            return False
        if self.active_queries is not None:
            for entry in self._cache.values():
                if (
                    entry.location == "device"
                    and entry.last_user not in self.active_queries
                ):
                    self._spill(entry)
                    self.contention_avoided_evictions += 1
                    return True
        for entry in self._cache.values():
            if entry.location == "device":
                self._spill(entry)
                return True
        return False

    def _spill(self, entry: CacheEntry) -> None:
        """Move a cached table to pinned host memory (device bytes freed)."""
        self.device.dtoh(entry.nbytes)
        entry.gtable.free()
        entry.gtable = None
        entry.location = "pinned"
        self.pinned_host_bytes += entry.nbytes
        self.spills += 1

    def _unspill(self, entry: CacheEntry) -> None:
        """Stream a spilled table back to the device caching region."""
        while True:
            try:
                if self.compress_cache:
                    entry.gtable = self._load_compressed(entry.host_table)
                else:
                    entry.gtable = GTable.from_host(
                        self.device, entry.host_table, region="caching"
                    )
                break
            except OutOfDeviceMemory:
                if not self._evict_other(entry):
                    raise
        entry.location = "device"
        self.pinned_host_bytes -= entry.nbytes
        self.unspills += 1

    def _evict_other(self, keep: CacheEntry) -> bool:
        if self.active_queries is not None:
            for entry in self._cache.values():
                if (
                    entry is not keep
                    and entry.location == "device"
                    and entry.last_user not in self.active_queries
                ):
                    self._spill(entry)
                    self.contention_avoided_evictions += 1
                    return True
        for entry in self._cache.values():
            if entry is not keep and entry.location == "device":
                self._spill(entry)
                return True
        return False

    def cached_tables(self) -> list[str]:
        return list(self._cache)

    def is_cached(self, name: str) -> bool:
        return name in self._cache

    def drop(self, name: str) -> None:
        """Remove a table from the cache (used by the exchange layer's
        temporary-table deregistration)."""
        entry = self._cache.pop(name, None)
        if entry is not None and entry.location == "device" and entry.gtable is not None:
            entry.gtable.free()

    def clear(self) -> None:
        for name in list(self._cache):
            self.drop(name)

    # -- format conversion ------------------------------------------------------

    def engine_indices_to_kernel(self, indices: np.ndarray) -> np.ndarray:
        """Convert Sirius' uint64 row ids to libcudf's int32.

        This is the conversion the paper singles out as *not* zero-copy;
        it is charged as a streaming kernel over both buffers.
        """
        if indices.dtype != np.uint64:
            raise TypeError(f"engine indices must be uint64, got {indices.dtype}")
        sentinel = np.uint64(2**64 - 1)
        non_sentinel = indices[indices != sentinel]
        if len(non_sentinel) and int(non_sentinel.max()) > np.iinfo(np.int32).max:
            raise OverflowError("row index exceeds int32 range of the kernel library")
        self.device.launch(
            KernelClass.STREAM, indices.nbytes, indices.nbytes // 2, len(indices)
        )
        out = indices.astype(np.int64, copy=True)
        out[indices == sentinel] = -1
        return out.astype(np.int32)

    def kernel_indices_to_engine(self, indices: np.ndarray) -> np.ndarray:
        """Convert libcudf int32 gather maps back to uint64 engine row ids.

        ``-1`` (no-match sentinel) maps to ``UINT64_MAX``.
        """
        self.device.launch(
            KernelClass.STREAM, indices.nbytes, indices.nbytes * 2, len(indices)
        )
        out = indices.astype(np.int64)
        return np.where(out < 0, np.uint64(2**64 - 1), out.astype(np.uint64)).astype(np.uint64)

    # -- reporting ------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "cold_loads": self.cold_loads,
            "hot_hits": self.hot_hits,
            "spills": self.spills,
            "unspills": self.unspills,
            "cached_tables": len(self._cache),
            "caching_used": self.device.caching_region.used,
            "caching_capacity": self.device.caching_region.capacity,
            "pinned_host_bytes": self.pinned_host_bytes,
            "compressed_saved_bytes": self.compressed_saved_bytes,
            "contention_avoided_evictions": self.contention_avoided_evictions,
        }
