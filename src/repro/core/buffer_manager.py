"""Sirius' buffer manager (§3.2.3 of the paper).

Responsibilities reproduced here:

* **Data caching region** — pre-allocated device memory holding input
  tables.  The first (cold) access to a host table pays the host->device
  copy; subsequent (hot) accesses are free, which is the paper's
  measurement methodology ("the numbers reported are the hot runs").
* **Data processing region** — the RMM pool on the device; kernels already
  allocate from it via :class:`~repro.gpu.device.Device`.
* **Format conversions** — Sirius uses ``uint64`` row ids while libcudf
  uses ``int32``; converting between them is the one non-zero-copy step
  and is charged as a streaming kernel here.  Host<->device table format
  conversion is a deep copy that happens on the cold run only.
* **Out-of-core extension (§3.4)** — when the caching region cannot hold a
  table, the manager spills the least-recently-used cached tables to
  *pinned host memory*; reading a spilled table later streams it back over
  the interconnect at the pinned rate (slower than a hot hit, but
  execution proceeds instead of failing).
* **Copy/compute overlap (``overlap=True``)** — cold loads are chunked and
  double-buffered on the device's copy stream: the first chunk is paid
  synchronously (the consuming pipeline needs data to start), the
  remaining chunks stream asynchronously behind the pipeline's kernels,
  and the host joins the stream at the pipeline-end sync point
  (:meth:`BufferManager.complete_loads`).  The executor additionally
  prefetches the *next* pipeline's base table via :meth:`prefetch`, whose
  copy is issued entirely on the stream.  Off by default — the default
  path is byte-identical to the synchronous loader.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..columnar import Table
from ..gpu.costmodel import KernelClass
from ..gpu.device import Device
from ..gpu.memory import OutOfDeviceMemory
from ..kernels import GTable

__all__ = ["BufferManager", "CacheEntry", "SpillFragment", "DEFAULT_LOAD_CHUNK_BYTES"]

# Double-buffering granularity of overlapped cold loads: large enough to
# amortise the per-chunk DMA latency, small enough that the first
# (synchronous) chunk is cheap.
DEFAULT_LOAD_CHUNK_BYTES = 1 << 20


class CacheEntry:
    """A cached table: either device-resident or spilled to pinned host."""

    __slots__ = (
        "name",
        "gtable",
        "host_table",
        "nbytes",
        "location",
        "compressed",
        "logical_nbytes",
        "last_user",
        "ready_at",
    )

    def __init__(self, name: str, gtable: GTable, host_table: Table, compressed: bool = False):
        self.name = name
        self.gtable = gtable
        self.host_table = host_table
        self.nbytes = gtable.nbytes  # accounted (packed when compressed)
        self.logical_nbytes = host_table.nbytes
        self.location = "device"
        self.compressed = compressed
        # Query that touched the entry last (device.query_owner); used by
        # contention-aware eviction under concurrent serving.
        self.last_user = None
        # Overlapped loads: stream timestamp at which the *first* chunk has
        # landed — the earliest time a pipelined consumer may start reading.
        self.ready_at = 0.0


class SpillFragment:
    """An intermediate-result partition tracked by the out-of-core spiller.

    Unlike :class:`CacheEntry` (base tables in the caching region), a
    fragment lives in the *processing pool* and walks the full tiered
    store: device -> pinned host (async, on the copy stream) -> simulated
    disk (when the pinned budget overflows).
    """

    __slots__ = ("name", "gtable", "host_table", "nbytes", "location", "event")

    def __init__(self, name: str, gtable: GTable):
        self.name = name
        self.gtable = gtable
        self.host_table = None  # snapshot taken on first spill
        self.nbytes = gtable.nbytes
        self.location = "device"  # "device" | "pinned" | "disk"
        # Copy-stream completion timestamp of the outstanding spill write;
        # joined before the host copy is promoted or demoted.
        self.event: float | None = None


class BufferManager:
    """Owns the caching region contents and the format-conversion paths."""

    def __init__(
        self,
        device: Device,
        enable_spill: bool = True,
        compress_cache: bool = False,
        overlap: bool = False,
        load_chunk_bytes: int = DEFAULT_LOAD_CHUNK_BYTES,
    ):
        """
        Args:
            device: The owning device.
            enable_spill: Spill LRU tables to pinned host memory when the
                caching region fills (§3.4 out-of-core extension).
            compress_cache: Store integer/date columns FOR+bit-packed in
                the caching region (§3.4's lightweight-compression
                extension): smaller footprint and cheaper cold loads, at
                the price of a decompression pass on every access.
            overlap: Chunk + double-buffer cold loads on the device's copy
                stream so transfers overlap the consuming pipeline's
                kernels, and honour executor prefetch requests.  Applies
                to uncompressed loads (compressed loads keep the
                synchronous path).  Off by default — the synchronous
                loader is byte-identical to the seed.
            load_chunk_bytes: Chunk granularity of overlapped loads.
        """
        self.device = device
        self.enable_spill = enable_spill
        self.compress_cache = compress_cache
        self.overlap = overlap
        self.load_chunk_bytes = int(load_chunk_bytes)
        self._cache: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.cold_loads = 0
        self.hot_hits = 0
        self.spills = 0
        self.unspills = 0
        self.prefetches = 0
        self.prefetch_hits = 0
        self.pinned_host_bytes = 0
        self.compressed_saved_bytes = 0
        # In-flight copy-stream events (full-completion timestamps):
        # ``_in_flight`` holds prefetched entries no query has consumed yet;
        # ``_must_sync`` holds consumed entries the host must join before
        # the consuming pipeline finalises (complete_loads).
        self._in_flight: dict[str, float] = {}
        self._must_sync: dict[str, float] = {}
        # Contention-aware spill (multi-query serving): when the scheduler
        # installs its live-query set here, eviction prefers LRU entries
        # whose last user is *not* an in-flight query, so one query's cold
        # load does not thrash tables another admitted query is actively
        # scanning.  None (default) = plain LRU, identical to the seed.
        self.active_queries: set | None = None
        self.contention_avoided_evictions = 0
        # Out-of-core intermediate-result spill entries (§3.4 extended to
        # operator state): partitioned joins/group-bys register build and
        # agg partitions here; the pool's pressure callback spills them
        # LRU-first.  Empty unless the engine runs out-of-core.
        self._fragments: "OrderedDict[str, SpillFragment]" = OrderedDict()
        # Pinned-host bytes the fragments may hold before the oldest
        # pinned fragment is demoted to the simulated disk tier.  None
        # (default) = unbounded pinned staging.
        self.pinned_fragment_budget: int | None = None
        self.fragment_pinned_bytes = 0
        self.fragment_spills = 0
        self.fragment_unspills = 0
        self.spilled_fragment_bytes = 0
        self.unspilled_fragment_bytes = 0
        self.pressure_spills = 0
        self.disk_spills = 0
        self.disk_spilled_bytes = 0
        # Monotone sequence handing each query run a unique fragment
        # namespace — slot names repeat across concurrent queries.
        self._fragment_ns_seq = 0
        self.disk_fragment_bytes = 0
        # Runtime-invariant observer (attached by the sanitizer layer;
        # None = unsanitized run, zero overhead on the hot path).
        self.sanitizer = None

    # -- caching region -------------------------------------------------------

    def get_table(self, name: str, host_table: Table) -> GTable:
        """Return the device-resident table, loading/caching on first use."""
        entry = self._cache.get(name)
        if entry is not None:
            event = self._in_flight.pop(name, None)
            if event is not None:
                # Prefetch hit: the copy was issued on the stream before the
                # consumer asked.  Pipelined consumption may begin once the
                # first chunk has landed; the tail chunks join at the
                # pipeline-end sync point like any overlapped load.
                self._cache.move_to_end(name)
                entry.last_user = self.device.query_owner
                self.device.wait_copies(entry.ready_at)
                self._must_sync[name] = event
                self.prefetch_hits += 1
                if self.sanitizer is not None:
                    self.sanitizer.on_entry_read(entry, event)
                return entry.gtable
            self._cache.move_to_end(name)
            entry.last_user = self.device.query_owner
            if entry.location == "pinned":
                self._unspill(entry)
            if entry.compressed:
                # Decompression pass: packed bytes in, logical bytes out.
                self.device.launch(
                    KernelClass.STREAM,
                    entry.nbytes,
                    entry.logical_nbytes,
                    entry.gtable.num_rows,
                )
            self.hot_hits += 1
            if self.sanitizer is not None:
                self.sanitizer.on_entry_read(entry, None)
            return entry.gtable
        gtable, event = self._load(name, host_table)
        entry = CacheEntry(name, gtable, host_table, compressed=self.compress_cache)
        entry.last_user = self.device.query_owner
        self._cache[name] = entry
        if event is not None:
            self._must_sync[name] = event
        self.cold_loads += 1
        if self.sanitizer is not None:
            self.sanitizer.on_entry_read(entry, event)
        return gtable

    def prefetch(self, name: str, host_table: Table) -> bool:
        """Issue a fully-asynchronous cold load of ``name`` on the copy
        stream (the executor's scan-prefetch hook for the next pipeline's
        base table).

        Best-effort: a no-op unless overlap mode is on, the table is not
        already cached, the cache is uncompressed, and the table fits the
        caching region *without* evicting (prefetch must never thrash
        tables the running pipeline still needs).  Returns True when the
        prefetch was issued.
        """
        if not self.overlap or self.compress_cache or name in self._cache:
            return False
        from ..kernels import GColumn

        columns: list = []
        try:
            for col in host_table.columns:
                columns.append(
                    GColumn.from_array(
                        self.device, col.dtype, col.data,
                        col.is_valid_mask(), col.dictionary, "caching",
                    )
                )
        except OutOfDeviceMemory:
            for column in columns:
                column.free()
            return False
        gtable = GTable(host_table.schema, columns, self.device)
        first_event = None
        event = self.device.clock.now
        remaining = host_table.nbytes
        while remaining > 0:
            nbytes = min(self.load_chunk_bytes, remaining)
            event = self.device.htod_async(nbytes)
            if first_event is None:
                first_event = event
            remaining -= nbytes
        entry = CacheEntry(name, gtable, host_table, compressed=False)
        entry.last_user = self.device.query_owner
        entry.ready_at = first_event if first_event is not None else event
        self._cache[name] = entry
        self._in_flight[name] = event
        self.cold_loads += 1
        self.prefetches += 1
        if self.sanitizer is not None:
            self.sanitizer.on_prefetch(entry, event)
        return True

    def complete_loads(self) -> float:
        """Join the copy stream for every overlapped load consumed since
        the last call (the pipeline-end synchronisation point).  Returns
        the exposed wait seconds; zero when the copies finished behind the
        pipeline's kernels (fully hidden) or nothing is pending."""
        if not self._must_sync:
            return 0.0
        target = max(self._must_sync.values())
        self._must_sync.clear()
        return self.device.wait_copies(target)

    def _load(self, name: str, host_table: Table) -> tuple[GTable, float | None]:
        """Cold path: deep-copy the host table into the caching region.

        Returns the device table plus, for overlapped loads, the copy
        stream's full-completion event timestamp (None for synchronous
        loads)."""
        while True:
            try:
                if self.compress_cache:
                    return self._load_compressed(host_table), None
                if self.overlap:
                    return self._load_overlapped(host_table)
                return GTable.from_host(self.device, host_table, region="caching"), None
            except OutOfDeviceMemory:
                if not self._evict_one():
                    raise

    def _load_overlapped(self, host_table: Table) -> tuple[GTable, float]:
        """Chunked double-buffered cold load: the first chunk is charged
        synchronously (the pipeline cannot start on nothing), the remaining
        chunks are issued on the copy stream and overlap the consuming
        pipeline's kernels until :meth:`complete_loads`."""
        from ..kernels import GColumn

        columns: list = []
        try:
            for col in host_table.columns:
                columns.append(
                    GColumn.from_array(
                        self.device, col.dtype, col.data,
                        col.is_valid_mask(), col.dictionary, "caching",
                    )
                )
        except BaseException:
            for column in columns:
                column.free()
            raise
        gtable = GTable(host_table.schema, columns, self.device)
        total = host_table.nbytes
        first = min(self.load_chunk_bytes, total)
        if first > 0:
            self.device.htod(first)
        event = self.device.clock.now
        remaining = total - first
        while remaining > 0:
            nbytes = min(self.load_chunk_bytes, remaining)
            event = self.device.htod_async(nbytes)
            remaining -= nbytes
        return gtable, event

    def _load_compressed(
        self, host_table: Table, count_savings: bool = True, pinned: bool = False
    ) -> GTable:
        """Load with FOR+bit-packing applied to the packable columns.

        ``count_savings`` is False on the unspill path: the cumulative
        savings counter reflects first loads only, not every spill cycle.
        """
        from ..kernels import GColumn
        from ..kernels.compression import pack_column, packable

        columns = []
        try:
            for col in host_table.columns:
                if packable(col):
                    packed = pack_column(col)
                    self.device.htod(packed.packed_nbytes, pinned=pinned)  # compressed wire
                    buf = self.device.new_buffer(
                        col.data, "caching", account_nbytes=packed.packed_nbytes
                    )
                    if count_savings:
                        self.compressed_saved_bytes += col.nbytes - packed.packed_nbytes
                    columns.append(GColumn(col.dtype, buf, None, col.dictionary))
                else:
                    self.device.htod(col.nbytes, pinned=pinned)
                    columns.append(
                        GColumn.from_array(
                            self.device, col.dtype, col.data,
                            col.is_valid_mask(), col.dictionary, "caching",
                        )
                    )
        except BaseException:
            for column in columns:
                column.free()
            raise
        return GTable(host_table.schema, columns, self.device)

    def _quiescent(self, name: str) -> bool:
        """Whether no copy-stream chunks are still landing in ``name``."""
        return name not in self._in_flight and name not in self._must_sync

    def _evict_one(self) -> bool:
        """Spill one device-resident entry to make room; False if none.

        Plain LRU in single-query mode.  Under concurrent serving
        (``active_queries`` installed) the first pass prefers LRU entries
        last touched by a query that is no longer in flight; only when
        every resident table belongs to a live query does it fall back to
        plain LRU (progress beats fairness).

        Entries with chunks still landing on the copy stream (prefetches
        and overlapped loads) are only victims of last resort: evicting
        one forces a host-blocking stream join *and* throws away the copy
        just issued, so any quiescent resident entry is preferred.  When
        an in-flight entry really is the only candidate, :meth:`_spill`
        syncs its outstanding chunks before freeing the device bytes.
        """
        if not self.enable_spill:
            return False
        for require_quiescent in (True, False):
            if self.active_queries is not None:
                for entry in self._cache.values():
                    if (
                        entry.location == "device"
                        and entry.last_user not in self.active_queries
                        and (not require_quiescent or self._quiescent(entry.name))
                    ):
                        self._spill(entry)
                        self.contention_avoided_evictions += 1
                        return True
            for entry in self._cache.values():
                if entry.location == "device" and (
                    not require_quiescent or self._quiescent(entry.name)
                ):
                    self._spill(entry)
                    return True
        return False

    def _spill(self, entry: CacheEntry) -> None:
        """Move a cached table to pinned host memory (device bytes freed).

        §3.4 spills into *pinned* host buffers, so the copy streams at the
        pinned interconnect rate."""
        self._sync_in_flight(entry.name)
        if self.sanitizer is not None:
            self.sanitizer.on_entry_release(entry, "spill")
        self.device.dtoh(entry.nbytes, pinned=True)
        entry.gtable.free()
        entry.gtable = None
        entry.location = "pinned"
        self.pinned_host_bytes += entry.nbytes
        self.spills += 1

    def _unspill(self, entry: CacheEntry) -> None:
        """Stream a spilled table back to the device caching region (from
        pinned host memory, at the pinned rate)."""
        while True:
            try:
                if self.compress_cache:
                    entry.gtable = self._load_compressed(
                        entry.host_table, count_savings=False, pinned=True
                    )
                else:
                    entry.gtable = self._pinned_from_host(entry.host_table)
                break
            except OutOfDeviceMemory:
                if not self._evict_other(entry):
                    raise
        entry.location = "device"
        self.pinned_host_bytes -= entry.nbytes
        self.unspills += 1

    def _pinned_from_host(self, host_table: Table) -> GTable:
        """Deep-copy a host table into the caching region at the pinned
        transfer rate (mirrors ``GTable.from_host`` charge-for-charge)."""
        from ..kernels import GColumn

        columns: list = []
        try:
            for col in host_table.columns:
                self.device.htod(col.nbytes, pinned=True)
                columns.append(
                    GColumn.from_array(
                        self.device, col.dtype, col.data,
                        col.is_valid_mask(), col.dictionary, "caching",
                    )
                )
        except BaseException:
            for column in columns:
                column.free()
            raise
        return GTable(host_table.schema, columns, self.device)

    def _sync_in_flight(self, name: str) -> None:
        """Join the copy stream for one entry's outstanding chunks (memory
        being written cannot be freed, spilled, or dropped mid-copy)."""
        pending = self._in_flight.pop(name, None)
        consumed = self._must_sync.pop(name, None)
        events = [e for e in (pending, consumed) if e is not None]
        if events:
            self.device.wait_copies(max(events))

    def _evict_other(self, keep: CacheEntry) -> bool:
        """Like :meth:`_evict_one` (same quiescence-first victim order)
        but never evicts ``keep`` — the entry being unspilled."""
        for require_quiescent in (True, False):
            if self.active_queries is not None:
                for entry in self._cache.values():
                    if (
                        entry is not keep
                        and entry.location == "device"
                        and entry.last_user not in self.active_queries
                        and (not require_quiescent or self._quiescent(entry.name))
                    ):
                        self._spill(entry)
                        self.contention_avoided_evictions += 1
                        return True
            for entry in self._cache.values():
                if (
                    entry is not keep
                    and entry.location == "device"
                    and (not require_quiescent or self._quiescent(entry.name))
                ):
                    self._spill(entry)
                    return True
        return False

    def cached_tables(self) -> list[str]:
        return list(self._cache)

    def is_cached(self, name: str) -> bool:
        return name in self._cache

    def drop(self, name: str) -> None:
        """Remove a table from the cache (used by the exchange layer's
        temporary-table deregistration).

        Device-resident entries free their device bytes; spilled entries
        release their pinned host bytes (the accounting leak fixed here:
        dropping a spilled entry previously left ``pinned_host_bytes``
        inflated forever)."""
        entry = self._cache.pop(name, None)
        if entry is None:
            return
        self._sync_in_flight(name)
        if self.sanitizer is not None:
            self.sanitizer.on_entry_release(entry, "drop")
        if entry.location == "device" and entry.gtable is not None:
            entry.gtable.free()
        elif entry.location == "pinned":
            self.pinned_host_bytes -= entry.nbytes

    def clear(self) -> None:
        for name in list(self._cache):
            self.drop(name)

    # -- intermediate-result (partition) spill entries --------------------------

    def fragment_namespace(self) -> str:
        """Hand out a namespace prefix unique to one query run, so the
        slot-derived fragment names of concurrent queries never collide."""
        self._fragment_ns_seq += 1
        return f"q{self._fragment_ns_seq}"

    def put_fragment(self, name: str, gtable: GTable) -> None:
        """Register a device-resident intermediate result (a join build or
        group-by partition) as a spillable fragment.

        The fragment stays in the processing pool until memory pressure
        (or an explicit :meth:`spill_fragment`) pushes it down the tiered
        store.  Re-registering a name replaces the old fragment.
        """
        if name in self._fragments:
            self.drop_fragment(name)
        self._fragments[name] = SpillFragment(name, gtable)

    def fragment_names(self) -> list[str]:
        return list(self._fragments)

    def fragment_location(self, name: str) -> str:
        return self._fragments[name].location

    def get_fragment(self, name: str) -> GTable:
        """Return the fragment's device table, promoting it back up the
        tiered store (disk -> pinned -> device) if it was spilled."""
        frag = self._fragments[name]
        self._fragments.move_to_end(name)
        if frag.location == "device":
            if self.sanitizer is not None:
                self.sanitizer.on_fragment_read(frag)
            return frag.gtable
        if frag.location == "disk":
            self.device.disk_read(frag.nbytes)
            frag.location = "pinned"
            self.disk_fragment_bytes -= frag.nbytes
            self.fragment_pinned_bytes += frag.nbytes
        if frag.event is not None:
            # The spill write must have fully landed before the host copy
            # is authoritative.
            self.device.wait_copies(frag.event)
            frag.event = None
        frag.gtable = self._fragment_to_device(frag.host_table)
        frag.location = "device"
        self.fragment_pinned_bytes -= frag.nbytes
        self.fragment_unspills += 1
        self.unspilled_fragment_bytes += frag.nbytes
        self.device.tracer.count("spill.fragment_unspilled_bytes", frag.nbytes)
        if self.sanitizer is not None:
            self.sanitizer.on_fragment_read(frag)
        return frag.gtable

    def spill_fragment(self, name: str) -> int:
        """Spill one device-resident fragment to pinned host memory.

        The device->host write is issued on the copy stream so it hides
        behind the query's compute (PR 5's overlap machinery); the pool
        bytes are released immediately, which is the entire point under
        pressure.  Returns the pool bytes freed (0 if not device-resident).
        """
        frag = self._fragments.get(name)
        if frag is None or frag.location != "device":
            return 0
        if frag.host_table is None:
            frag.host_table = frag.gtable.to_host(charge_transfer=False)
        device = self.device
        frag.event = device.dtoh_async(frag.nbytes, pinned=True)
        if self.sanitizer is not None:
            self.sanitizer.on_fragment_spill(name, frag.event)
        frag.gtable.free()
        frag.gtable = None
        frag.location = "pinned"
        self.fragment_pinned_bytes += frag.nbytes
        self.fragment_spills += 1
        self.spilled_fragment_bytes += frag.nbytes
        device.tracer.count("spill.fragment_spilled_bytes", frag.nbytes)
        self._maybe_demote_to_disk()
        return frag.nbytes

    def drop_fragment(self, name: str) -> None:
        """Release a fragment from whichever tier holds it."""
        frag = self._fragments.pop(name, None)
        if frag is None:
            return
        if self.sanitizer is not None:
            # A pinned fragment dropped with an outstanding spill write is
            # a stream-ordered release (the staging buffer retires behind
            # the write and is never reused before it) — not a race.
            self.sanitizer.on_fragment_drop(name)
        if frag.location == "device" and frag.gtable is not None:
            frag.gtable.free()
        elif frag.location == "pinned":
            self.fragment_pinned_bytes -= frag.nbytes
        elif frag.location == "disk":
            self.disk_fragment_bytes -= frag.nbytes

    def clear_fragments(self) -> None:
        for name in list(self._fragments):
            self.drop_fragment(name)

    def drop_namespace(self, ns: str) -> None:
        """Release every fragment a query run registered (end-of-query
        cleanup; a no-op when the run already retired them all)."""
        prefix = ns + "/"
        for name in list(self._fragments):
            if name.startswith(prefix):
                self.drop_fragment(name)
        if self.sanitizer is not None:
            self.sanitizer.check_namespace_dropped(self, ns)

    def handle_pressure(self, needed: int) -> bool:
        """Processing-pool pressure callback (see :attr:`~repro.gpu.rmm
        .PoolAllocator.pressure_callback`): spill LRU device-resident
        fragments until ``needed`` bytes are released.  Returns True when
        anything was spilled — the failed allocation then retries instead
        of raising OOM.
        """
        freed = 0
        for name in list(self._fragments):
            if self._fragments[name].location != "device":
                continue
            freed += self.spill_fragment(name)
            self.pressure_spills += 1
            if freed >= needed:
                break
        return freed > 0

    def _maybe_demote_to_disk(self) -> None:
        """Demote LRU pinned fragments to the simulated disk tier while the
        pinned staging budget is exceeded."""
        if self.pinned_fragment_budget is None:
            return
        while self.fragment_pinned_bytes > self.pinned_fragment_budget:
            victim = None
            for frag in self._fragments.values():
                if frag.location == "pinned":
                    victim = frag
                    break
            if victim is None:
                return
            if victim.event is not None:
                self.device.wait_copies(victim.event)
                victim.event = None
            self.device.disk_write(victim.nbytes)
            victim.location = "disk"
            self.fragment_pinned_bytes -= victim.nbytes
            self.disk_fragment_bytes += victim.nbytes
            self.disk_spills += 1
            self.disk_spilled_bytes += victim.nbytes

    def _fragment_to_device(self, host_table: Table) -> GTable:
        """Rebuild a spilled fragment in the processing pool, streaming it
        back from pinned host memory at the pinned rate."""
        from ..kernels import GColumn

        columns: list = []
        try:
            for col in host_table.columns:
                self.device.htod(col.nbytes, pinned=True)
                columns.append(
                    GColumn.from_array(
                        self.device, col.dtype, col.data,
                        col.is_valid_mask(), col.dictionary,
                    )
                )
        except BaseException:
            for column in columns:
                column.free()
            raise
        return GTable(host_table.schema, columns, self.device)

    def protected_columns(self):
        """Device-resident columns owned by the buffer manager (cached
        tables and live fragments).  The out-of-core executor's chunk
        disposal must never free these: streaming operators may pass
        cached columns through into chunks by reference."""
        cols = []
        for entry in self._cache.values():
            if entry.location == "device" and entry.gtable is not None:
                cols.extend(entry.gtable.columns)
        for frag in self._fragments.values():
            if frag.location == "device" and frag.gtable is not None:
                cols.extend(frag.gtable.columns)
        return cols

    def spill_stats(self) -> dict:
        """Counters of the intermediate-result spill tier, snapshot by the
        executor into the profile's spill section."""
        return {
            "fragment_spills": self.fragment_spills,
            "fragment_unspills": self.fragment_unspills,
            "spilled_bytes": self.spilled_fragment_bytes,
            "unspilled_bytes": self.unspilled_fragment_bytes,
            "pressure_spills": self.pressure_spills,
            "disk_spills": self.disk_spills,
            "disk_spilled_bytes": self.disk_spilled_bytes,
            "pinned_fragment_bytes": self.fragment_pinned_bytes,
            "disk_fragment_bytes": self.disk_fragment_bytes,
            "live_fragments": len(self._fragments),
        }

    # -- format conversion ------------------------------------------------------

    def engine_indices_to_kernel(self, indices: np.ndarray) -> np.ndarray:
        """Convert Sirius' uint64 row ids to libcudf's int32.

        This is the conversion the paper singles out as *not* zero-copy;
        it is charged as a streaming kernel over both buffers.
        """
        if indices.dtype != np.uint64:
            raise TypeError(f"engine indices must be uint64, got {indices.dtype}")
        sentinel = np.uint64(2**64 - 1)
        non_sentinel = indices[indices != sentinel]
        if len(non_sentinel) and int(non_sentinel.max()) > np.iinfo(np.int32).max:
            raise OverflowError("row index exceeds int32 range of the kernel library")
        self.device.launch(
            KernelClass.STREAM, indices.nbytes, indices.nbytes // 2, len(indices)
        )
        out = indices.astype(np.int64, copy=True)
        out[indices == sentinel] = -1
        return out.astype(np.int32)

    def kernel_indices_to_engine(self, indices: np.ndarray) -> np.ndarray:
        """Convert libcudf int32 gather maps back to uint64 engine row ids.

        ``-1`` (no-match sentinel) maps to ``UINT64_MAX``.
        """
        self.device.launch(
            KernelClass.STREAM, indices.nbytes, indices.nbytes * 2, len(indices)
        )
        out = indices.astype(np.int64)
        return np.where(out < 0, np.uint64(2**64 - 1), out.astype(np.uint64)).astype(np.uint64)

    # -- reporting ------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "cold_loads": self.cold_loads,
            "hot_hits": self.hot_hits,
            "spills": self.spills,
            "unspills": self.unspills,
            "prefetches": self.prefetches,
            "prefetch_hits": self.prefetch_hits,
            "cached_tables": len(self._cache),
            "caching_used": self.device.caching_region.used,
            "caching_capacity": self.device.caching_region.capacity,
            "pinned_host_bytes": self.pinned_host_bytes,
            "compressed_saved_bytes": self.compressed_saved_bytes,
            "contention_avoided_evictions": self.contention_avoided_evictions,
            "fragment_spills": self.fragment_spills,
            "fragment_unspills": self.fragment_unspills,
            "spilled_fragment_bytes": self.spilled_fragment_bytes,
            "disk_spilled_bytes": self.disk_spilled_bytes,
        }
