"""Sirius - the paper's primary contribution: a GPU-native SQL engine."""

from .buffer_manager import BufferManager
from .deadline import (
    Deadline,
    DeadlineExceededError,
    DidNotFinishError,
    MemoryBudgetExceededError,
)
from .executor import OperatorTiming, PipelineExecutor, QueryProfile
from .expr_eval import UnsupportedExpressionError
from .fallback import DegradationTier, FALLBACK_EXCEPTIONS, FallbackEvent, FallbackHandler
from .operators.base import Category, ExecutionContext, OperatorRegistry, UnsupportedFeatureError
from .planner import PhysicalPlan, Pipeline, compile_plan
from .sirius import SiriusEngine

__all__ = [
    "BufferManager",
    "Category",
    "Deadline",
    "DeadlineExceededError",
    "DegradationTier",
    "DidNotFinishError",
    "MemoryBudgetExceededError",
    "ExecutionContext",
    "FALLBACK_EXCEPTIONS",
    "FallbackEvent",
    "FallbackHandler",
    "OperatorRegistry",
    "PhysicalPlan",
    "Pipeline",
    "OperatorTiming",
    "PipelineExecutor",
    "QueryProfile",
    "SiriusEngine",
    "UnsupportedExpressionError",
    "UnsupportedFeatureError",
    "compile_plan",
]
