"""Sirius - the paper's primary contribution: a GPU-native SQL engine."""

from .buffer_manager import BufferManager
from .executor import OperatorTiming, PipelineExecutor, QueryProfile
from .expr_eval import UnsupportedExpressionError
from .fallback import FallbackEvent, FallbackHandler
from .operators.base import Category, ExecutionContext, OperatorRegistry, UnsupportedFeatureError
from .planner import PhysicalPlan, Pipeline, compile_plan
from .sirius import SiriusEngine

__all__ = [
    "BufferManager",
    "Category",
    "ExecutionContext",
    "FallbackEvent",
    "FallbackHandler",
    "OperatorRegistry",
    "PhysicalPlan",
    "Pipeline",
    "OperatorTiming",
    "PipelineExecutor",
    "QueryProfile",
    "SiriusEngine",
    "UnsupportedExpressionError",
    "UnsupportedFeatureError",
    "compile_plan",
]
