"""Lowering of plan expressions onto device kernels.

The executor evaluates a plan :class:`~repro.plan.Expression` against a
:class:`~repro.kernels.GTable` by walking the tree and dispatching each
node to the corresponding kernel.  Literals evaluate to Python scalars;
the parent kernel broadcasts them, so constants never materialise columns
unless an expression is a bare literal.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..columnar.dtypes import dtype_from_name
from ..kernels import (
    GColumn,
    GTable,
    absolute,
    binary_arith,
    case_when,
    cast_column,
    coalesce,
    compare,
    concat_strings,
    extract_date_part,
    fill_constant,
    in_list,
    is_null,
    like,
    logical_and,
    logical_not,
    logical_or,
    round_column,
    string_case,
    string_length,
    substring,
)
from ..plan import Expression, FieldRef, Literal, ScalarCall

__all__ = ["evaluate", "evaluate_predicate", "UnsupportedExpressionError"]


class UnsupportedExpressionError(NotImplementedError):
    """An expression Sirius cannot run on the GPU (triggers CPU fallback)."""


def evaluate(expr: Expression, table: GTable) -> "GColumn | Any":
    """Evaluate ``expr`` over ``table``; returns a GColumn or a scalar."""
    if isinstance(expr, FieldRef):
        return table.columns[expr.index]
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ScalarCall):
        return _call(expr, table)
    raise UnsupportedExpressionError(f"cannot evaluate {expr!r} on device")


def evaluate_to_column(expr: Expression, table: GTable, dtype=None) -> GColumn:
    """Like :func:`evaluate` but materialises bare literals as columns.

    ``dtype`` is the planner-typed output type for the expression's slot;
    without it a bare literal would be materialised with a dtype inferred
    from its Python value (e.g. ``0`` -> INT64 in a FLOAT64 column
    position, ``None`` -> INT64 regardless of the typed NULL's dtype).
    """
    result = evaluate(expr, table)
    if isinstance(result, GColumn):
        return result
    return fill_constant(table.device, table.num_rows, result, dtype=dtype)


def evaluate_predicate(expr: Expression, table: GTable) -> np.ndarray:
    """Evaluate a boolean expression to a keep-mask (NULL -> False)."""
    result = evaluate(expr, table)
    if not isinstance(result, GColumn):
        return np.full(table.num_rows, bool(result), dtype=np.bool_)
    return result.data.astype(np.bool_) & result.valid_mask()


def _call(call: ScalarCall, table: GTable):
    f = call.func

    if f in ("add", "subtract", "multiply", "divide", "modulo"):
        left = evaluate(call.args[0], table)
        right = evaluate(call.args[1], table)
        if not isinstance(left, GColumn) and not isinstance(right, GColumn):
            return _fold_scalar_arith(f, left, right)
        return binary_arith(f, left, right)

    if f in ("eq", "ne", "lt", "le", "gt", "ge"):
        left = evaluate(call.args[0], table)
        right = evaluate(call.args[1], table)
        if not isinstance(left, GColumn) and not isinstance(right, GColumn):
            return _fold_scalar_cmp(f, left, right)
        return compare(f, left, right)

    if f == "and":
        left = evaluate(call.args[0], table)
        right = evaluate(call.args[1], table)
        if not isinstance(left, GColumn) and not isinstance(right, GColumn):
            return bool(left) and bool(right)
        return logical_and(left, right)
    if f == "or":
        left = evaluate(call.args[0], table)
        right = evaluate(call.args[1], table)
        if not isinstance(left, GColumn) and not isinstance(right, GColumn):
            return bool(left) or bool(right)
        return logical_or(left, right)
    if f == "not":
        operand = evaluate(call.args[0], table)
        if not isinstance(operand, GColumn):
            return None if operand is None else not bool(operand)
        return logical_not(operand)

    if f == "negate":
        operand = evaluate(call.args[0], table)
        if not isinstance(operand, GColumn):
            return None if operand is None else -operand
        return binary_arith("multiply", operand, -1)

    if f in ("is_null", "is_not_null"):
        return is_null(_as_column(call.args[0], table), negate=(f == "is_not_null"))

    if f in ("like", "not_like"):
        pattern = _literal_value(call.args[1], "LIKE pattern")
        return like(
            _as_column(call.args[0], table),
            pattern,
            negate=(f == "not_like"),
            escape=call.options.get("escape"),
        )

    if f == "contains":
        needle = _literal_value(call.args[1], "contains needle")
        from ..kernels import contains as contains_kernel

        return contains_kernel(_as_column(call.args[0], table), needle)

    if f == "starts_with":
        prefix = _literal_value(call.args[1], "starts_with prefix")
        return like(_as_column(call.args[0], table), f"{prefix}%")

    if f in ("in", "not_in"):
        column = _as_column(call.args[0], table)
        values = [_literal_value(a, "IN list element") for a in call.args[1:]]
        result = in_list(column, values)
        return logical_not(result) if f == "not_in" else result

    if f == "between":
        column = evaluate(call.args[0], table)
        low = evaluate(call.args[1], table)
        high = evaluate(call.args[2], table)
        return logical_and(compare("ge", column, low), compare("le", column, high))

    if f == "case":
        # args = [cond1, res1, cond2, res2, ..., default]
        pairs = call.args[:-1]
        default = call.args[-1]
        conditions = [_as_column(pairs[i], table) for i in range(0, len(pairs), 2)]
        results = [evaluate(pairs[i + 1], table) for i in range(0, len(pairs), 2)]
        return case_when(conditions, results, evaluate(default, table))

    if f == "coalesce":
        operands = [evaluate(a, table) for a in call.args]
        if not any(isinstance(o, GColumn) for o in operands):
            return next((o for o in operands if o is not None), None)
        return coalesce(operands)

    if f in ("upper", "lower"):
        return string_case(_as_column(call.args[0], table), upper=(f == "upper"))

    if f == "length":
        return string_length(_as_column(call.args[0], table))

    if f == "concat":
        operands = [evaluate(a, table) for a in call.args]
        if not any(isinstance(o, GColumn) for o in operands):
            if any(o is None for o in operands):
                return None
            return "".join(str(o) for o in operands)
        return concat_strings(operands)

    if f == "abs":
        operand = evaluate(call.args[0], table)
        if not isinstance(operand, GColumn):
            return None if operand is None else abs(operand)
        return absolute(operand)

    if f == "round":
        digits = int(_literal_value(call.args[1], "round digits")) if len(call.args) > 1 else 0
        operand = evaluate(call.args[0], table)
        if not isinstance(operand, GColumn):
            return None if operand is None else float(round(float(operand), digits))
        return round_column(operand, digits)

    if f == "cast":
        target = dtype_from_name(call.options["to"])
        return cast_column(_as_column(call.args[0], table), target)

    if f in ("extract_year", "extract_month", "extract_day"):
        return extract_date_part(f.removeprefix("extract_"), _as_column(call.args[0], table))

    if f == "substring":
        start = int(call.options.get("start", _literal_value(call.args[1], "substring start")))
        length = int(call.options.get("length", _literal_value(call.args[2], "substring length")))
        return substring(_as_column(call.args[0], table), start, length)

    raise UnsupportedExpressionError(f"scalar function {f!r} not supported on device")


def _fold_scalar_arith(op: str, left, right):
    """Fold arithmetic between two constants; NULL propagates."""
    if left is None or right is None:
        return None
    if op == "divide":
        return left / right if right != 0 else None
    table = {
        "add": left + right,
        "subtract": left - right,
        "multiply": left * right,
        "modulo": left % right if right != 0 else None,
    }
    return table[op]


def _fold_scalar_cmp(op: str, left, right) -> bool:
    """Fold a comparison of two constants (e.g. optimizer leftovers)."""
    if left is None or right is None:
        return False
    table = {"eq": left == right, "ne": left != right, "lt": left < right,
             "le": left <= right, "gt": left > right, "ge": left >= right}
    return bool(table[op])


def _as_column(expr: Expression, table: GTable) -> GColumn:
    result = evaluate(expr, table)
    if isinstance(result, GColumn):
        return result
    return fill_constant(table.device, table.num_rows, result)


def _literal_value(expr: Expression, what: str):
    if not isinstance(expr, Literal):
        raise UnsupportedExpressionError(f"{what} must be a literal, got {expr!r}")
    return expr.value
