"""Lowering of plan expressions onto device kernels.

The executor evaluates a plan :class:`~repro.plan.Expression` against a
:class:`~repro.kernels.GTable` by walking the tree and dispatching each
node to the corresponding kernel.  Literals evaluate to Python scalars;
the parent kernel broadcasts them, so constants never materialise columns
unless an expression is a bare literal.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..columnar.dtypes import dtype_from_name
from ..kernels import (
    GColumn,
    GTable,
    binary_arith,
    case_when,
    cast_column,
    coalesce,
    compare,
    extract_date_part,
    fill_constant,
    in_list,
    is_null,
    like,
    logical_and,
    logical_not,
    logical_or,
    substring,
)
from ..plan import Expression, FieldRef, Literal, ScalarCall

__all__ = ["evaluate", "evaluate_predicate", "UnsupportedExpressionError"]


class UnsupportedExpressionError(NotImplementedError):
    """An expression Sirius cannot run on the GPU (triggers CPU fallback)."""


def evaluate(expr: Expression, table: GTable) -> "GColumn | Any":
    """Evaluate ``expr`` over ``table``; returns a GColumn or a scalar."""
    if isinstance(expr, FieldRef):
        return table.columns[expr.index]
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ScalarCall):
        return _call(expr, table)
    raise UnsupportedExpressionError(f"cannot evaluate {expr!r} on device")


def evaluate_to_column(expr: Expression, table: GTable) -> GColumn:
    """Like :func:`evaluate` but materialises bare literals as columns."""
    result = evaluate(expr, table)
    if isinstance(result, GColumn):
        return result
    return fill_constant(table.device, table.num_rows, result)


def evaluate_predicate(expr: Expression, table: GTable) -> np.ndarray:
    """Evaluate a boolean expression to a keep-mask (NULL -> False)."""
    result = evaluate(expr, table)
    if not isinstance(result, GColumn):
        return np.full(table.num_rows, bool(result), dtype=np.bool_)
    return result.data.astype(np.bool_) & result.valid_mask()


def _call(call: ScalarCall, table: GTable):
    f = call.func

    if f in ("add", "subtract", "multiply", "divide", "modulo"):
        left = evaluate(call.args[0], table)
        right = evaluate(call.args[1], table)
        return binary_arith(f, left, right)

    if f in ("eq", "ne", "lt", "le", "gt", "ge"):
        left = evaluate(call.args[0], table)
        right = evaluate(call.args[1], table)
        if not isinstance(left, GColumn) and not isinstance(right, GColumn):
            return _fold_scalar_cmp(f, left, right)
        return compare(f, left, right)

    if f == "and":
        left = evaluate(call.args[0], table)
        right = evaluate(call.args[1], table)
        if not isinstance(left, GColumn) and not isinstance(right, GColumn):
            return bool(left) and bool(right)
        return logical_and(left, right)
    if f == "or":
        left = evaluate(call.args[0], table)
        right = evaluate(call.args[1], table)
        if not isinstance(left, GColumn) and not isinstance(right, GColumn):
            return bool(left) or bool(right)
        return logical_or(left, right)
    if f == "not":
        return logical_not(_as_column(call.args[0], table))

    if f == "negate":
        return binary_arith("multiply", evaluate(call.args[0], table), -1)

    if f in ("is_null", "is_not_null"):
        return is_null(_as_column(call.args[0], table), negate=(f == "is_not_null"))

    if f in ("like", "not_like"):
        pattern = _literal_value(call.args[1], "LIKE pattern")
        return like(_as_column(call.args[0], table), pattern, negate=(f == "not_like"))

    if f == "contains":
        needle = _literal_value(call.args[1], "contains needle")
        from ..kernels import contains as contains_kernel

        return contains_kernel(_as_column(call.args[0], table), needle)

    if f == "starts_with":
        prefix = _literal_value(call.args[1], "starts_with prefix")
        return like(_as_column(call.args[0], table), f"{prefix}%")

    if f in ("in", "not_in"):
        column = _as_column(call.args[0], table)
        values = [_literal_value(a, "IN list element") for a in call.args[1:]]
        result = in_list(column, values)
        return logical_not(result) if f == "not_in" else result

    if f == "between":
        column = evaluate(call.args[0], table)
        low = evaluate(call.args[1], table)
        high = evaluate(call.args[2], table)
        return logical_and(compare("ge", column, low), compare("le", column, high))

    if f == "case":
        # args = [cond1, res1, cond2, res2, ..., default]
        pairs = call.args[:-1]
        default = call.args[-1]
        conditions = [_as_column(pairs[i], table) for i in range(0, len(pairs), 2)]
        results = [evaluate(pairs[i + 1], table) for i in range(0, len(pairs), 2)]
        return case_when(conditions, results, evaluate(default, table))

    if f == "coalesce":
        return coalesce([evaluate(a, table) for a in call.args])

    if f == "cast":
        target = dtype_from_name(call.options["to"])
        return cast_column(_as_column(call.args[0], table), target)

    if f in ("extract_year", "extract_month", "extract_day"):
        return extract_date_part(f.removeprefix("extract_"), _as_column(call.args[0], table))

    if f == "substring":
        start = int(call.options.get("start", _literal_value(call.args[1], "substring start")))
        length = int(call.options.get("length", _literal_value(call.args[2], "substring length")))
        return substring(_as_column(call.args[0], table), start, length)

    raise UnsupportedExpressionError(f"scalar function {f!r} not supported on device")


def _fold_scalar_cmp(op: str, left, right) -> bool:
    """Fold a comparison of two constants (e.g. optimizer leftovers)."""
    if left is None or right is None:
        return False
    table = {"eq": left == right, "ne": left != right, "lt": left < right,
             "le": left <= right, "gt": left > right, "ge": left >= right}
    return bool(table[op])


def _as_column(expr: Expression, table: GTable) -> GColumn:
    result = evaluate(expr, table)
    if isinstance(result, GColumn):
        return result
    return fill_constant(table.device, table.num_rows, result)


def _literal_value(expr: Expression, what: str):
    if not isinstance(expr, Literal):
        raise UnsupportedExpressionError(f"{what} must be a literal, got {expr!r}")
    return expr.value
