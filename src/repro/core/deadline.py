"""Unified deadline / DNF mechanism on the simulated clock.

The paper's evaluation reports "DNF" for queries an engine cannot finish
(ClickHouse on Q9).  The seed reproduction modelled that with an ad-hoc
row budget inside the CPU engine; this module replaces it with a single
mechanism every engine shares: a :class:`Deadline` — a per-query resource
envelope with a time budget anchored on a
:class:`~repro.gpu.clock.SimClock` and an optional join-memory ceiling —
checked inside the executors (pipeline executor, CPU engine, distributed
executor), so that *any* engine can report DNF the same way.

Two check styles exist:

* :meth:`Deadline.check` — reactive: raise once simulated time has passed
  the deadline (cheap; called at operator/pipeline/fragment boundaries);
* :meth:`Deadline.check_projected` — proactive: raise when the *projected*
  cost of the next step would cross the deadline.  This is what lets the
  simulation abort Q9's written-order cross join without materialising
  billions of rows, exactly like a production timeout would kill the
  query long before it completes.
"""

from __future__ import annotations

from ..gpu.clock import SimClock

__all__ = [
    "Deadline",
    "DeadlineExceededError",
    "DidNotFinishError",
    "MemoryBudgetExceededError",
]


class DidNotFinishError(RuntimeError):
    """The query was aborted before producing a result (reported as DNF).

    Base class for every abort reason — deadline expiry and the memory
    ceiling both derive from it, so harnesses catch one exception type.
    """


class DeadlineExceededError(DidNotFinishError):
    """Simulated time (or its projection) crossed the query deadline."""

    def __init__(self, message: str, *, budget_s: float, elapsed_s: float):
        super().__init__(message)
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class MemoryBudgetExceededError(DidNotFinishError):
    """An intermediate grew past the deadline's memory ceiling.

    ClickHouse-style engines kill a query whose join intermediates
    outgrow the join-memory limit long before any wall-clock timeout —
    the paper's Q9 DNF.  This is the memory dimension of the same
    resource envelope the time budget belongs to.
    """

    def __init__(self, message: str, *, rows: int, limit: int):
        super().__init__(message)
        self.rows = rows
        self.limit = limit


class Deadline:
    """A per-query resource envelope on the simulated clock.

    Two dimensions, either optional (but at least one must be set):

    * a **time budget** in simulated seconds.  The deadline is *absolute*:
      it is anchored at construction time on a reference clock
      (`expires_at = clock.now + budget_s`), so concurrent executors on
      different clocks (distributed nodes) all check the same instant;
    * a **memory ceiling** (``max_intermediate_rows``) on the largest
      intermediate an operator may materialise, checked by executors
      before join assembly.
    """

    def __init__(
        self,
        budget_s: float | None,
        clock: SimClock,
        max_intermediate_rows: int | None = None,
    ):
        if budget_s is None and max_intermediate_rows is None:
            raise ValueError("deadline needs a time budget or a memory ceiling")
        if budget_s is not None and budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        if max_intermediate_rows is not None and max_intermediate_rows <= 0:
            raise ValueError("memory ceiling must be positive")
        self.budget_s = budget_s
        self.max_intermediate_rows = max_intermediate_rows
        self.started_at = clock.now
        self.expires_at = (
            clock.now + budget_s if budget_s is not None else float("inf")
        )
        # Simulated seconds spent outside this clock's execution — e.g.
        # waiting in the serving admission queue — charged against the
        # budget via charge_wait().  A deadline covers a query's whole
        # lifetime, not just the part that runs.
        self.waited_s = 0.0

    def charge_wait(self, seconds: float) -> None:
        """Charge time spent waiting *before* execution (admission queue).

        The original bug: deadlines were only checked at chunk/pipeline
        boundaries, so a query could sit in the serving wait queue past its
        entire budget and still be admitted with a full deadline.  The
        serving scheduler now charges queue wait here when the query is
        admitted; the very next boundary check fires if the budget is
        already gone.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge a negative wait of {seconds}s")
        self.waited_s += seconds
        if self.budget_s is not None:
            self.expires_at -= seconds

    def remaining(self, now: float) -> float:
        return self.expires_at - now

    def expired(self, now: float) -> bool:
        return now > self.expires_at

    def check(self, clock: SimClock) -> None:
        """Raise :class:`DeadlineExceededError` if the clock passed the
        deadline."""
        self.check_at(clock.now)

    def check_at(self, now: float) -> None:
        if now > self.expires_at:
            raise DeadlineExceededError(
                f"query exceeded its {self.budget_s:.6f}s deadline "
                f"(elapsed {now - self.started_at + self.waited_s:.6f}s simulated)",
                budget_s=self.budget_s,
                elapsed_s=now - self.started_at + self.waited_s,
            )

    def check_projected(self, clock: SimClock, projected_seconds: float) -> None:
        """Raise when the next step's projected cost would cross the
        deadline — the simulation-friendly form of "the timeout would have
        killed this query", used before materialising pathological
        intermediates."""
        projected_now = clock.now + projected_seconds
        if projected_now > self.expires_at:
            raise DeadlineExceededError(
                f"projected cost {projected_seconds:.6f}s would exceed the "
                f"{self.budget_s:.6f}s deadline "
                f"(elapsed {clock.now - self.started_at + self.waited_s:.6f}s simulated)",
                budget_s=self.budget_s,
                elapsed_s=projected_now - self.started_at + self.waited_s,
            )

    def check_rows(self, rows: int) -> None:
        """Raise :class:`MemoryBudgetExceededError` when an intermediate
        would outgrow the memory ceiling (no-op if no ceiling is set)."""
        if self.max_intermediate_rows is not None and rows > self.max_intermediate_rows:
            raise MemoryBudgetExceededError(
                f"join intermediate of {rows} rows exceeds the "
                f"{self.max_intermediate_rows}-row budget (query did not finish)",
                rows=rows,
                limit=self.max_intermediate_rows,
            )
