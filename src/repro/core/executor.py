"""The pipeline executor: global task queue + push-based execution.

Reproduces §3.2.2's model:

* the physical plan is a set of **pipelines**; each is a task enqueued in
  a global queue and picked up when its dependencies are satisfied (the
  paper's idle CPU threads pulling tasks — execution here is sequential
  over the ready set, which is equivalent under a simulated clock);
* within a pipeline, execution is **push-based**: the executor owns all
  state (the ``state`` dict per pipeline plus the shared slot table) and
  pushes chunks into stateless operators;
* every operator's simulated time is attributed to its Figure-5 category,
  producing the per-query breakdown the paper reports.

Execution is **task-granular**: a :class:`QueryRun` advances one chunk at
a time through :meth:`QueryRun.step`, which is what lets the serving
scheduler (:mod:`repro.sched`) interleave many concurrent queries on one
device at chunk granularity.  :meth:`PipelineExecutor.run` simply steps a
run to completion, so single-query execution is unchanged (same pipeline
order, same clock charges, same profiles).

When the execution context carries a real tracer the executor also emits
the span hierarchy query → pipeline → operator.  Operator work inside a
pipeline interleaves chunk by chunk, so operator spans are recorded
retroactively: their interval covers first to last activity and their
``busy_s`` attribute carries the accumulated active time (the intervals
of sibling operators overlap; ``busy_s`` values are disjoint and sum to
the query's accumulated *service* time — which equals elapsed simulated
time when the query runs alone, and excludes other queries' interleaved
work when it does not).
"""

from __future__ import annotations

from collections import deque

from ..kernels import GTable, slice_table
from ..obs import OperatorTiming, QueryProfile
from .deadline import Deadline
from .operators.base import ChunkStream, ExecutionContext
from .operators.join import PartitionedBuild
from .operators.scan import IntermediateSource, TableScan
from .planner import PhysicalPlan, Pipeline

__all__ = ["PipelineExecutor", "QueryRun", "QueryProfile", "OperatorTiming"]

_DONE = object()


class QueryRun:
    """Task-granular execution of one :class:`PhysicalPlan`.

    A run is a resumable coroutine over the query's pipelines: every call
    to :meth:`step` performs one task — pushing one source chunk through a
    pipeline's operators into its sink (plus any adjacent bookkeeping such
    as finalising a finished pipeline or opening the next one).  Pipelines
    are served from the global queue in dependency order, exactly as
    :meth:`PipelineExecutor.run` always did, so stepping a run to
    completion is byte-identical to the old monolithic loop.

    Attributes:
        service_seconds: Accumulated simulated time this run's own steps
            advanced the clock — under concurrent serving this is the
            query's *service time*, excluding other queries' interleaved
            work (and equal to ``profile.sim_seconds`` when run alone).
        result: The final :class:`GTable` once the run finishes.
        profile: The :class:`QueryProfile`, complete once finished.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        physical: PhysicalPlan,
        deadline: Deadline | None = None,
    ):
        self.ctx = ctx
        self.physical = physical
        self.deadline = deadline
        self.profile = QueryProfile()
        self.result: GTable | None = None
        self.service_seconds = 0.0
        self.steps_taken = 0
        self.done = False
        self._gen = self._drive()

    # -- stepping ------------------------------------------------------------

    def step(self) -> bool:
        """Advance by one task (≈ one chunk); ``False`` once finished.

        Simulated time consumed by the step is added to
        :attr:`service_seconds`.  Exceptions (deadline expiry, device OOM,
        injected faults) propagate to the caller; the run is closed —
        open spans unwound — and cannot be resumed.
        """
        if self.done:
            return False
        clock = self.ctx.device.clock
        mark = clock.now
        try:
            next(self._gen)
        except StopIteration:
            self.done = True
        except BaseException:
            self.done = True
            raise
        finally:
            self.service_seconds += clock.now - mark
            self.steps_taken += 1
        return not self.done

    def abort(self) -> None:
        """Terminate an unfinished run, unwinding its open trace spans."""
        if not self.done:
            self._gen.close()
            self.done = True

    # -- the coroutine -------------------------------------------------------

    def _drive(self):
        # Fragment names are only slot-unique; concurrent queries share
        # one buffer manager, so each run gets its own namespace — and
        # an aborted run (OOM, deadline) must not strand its fragments.
        frag_ns = self.ctx.buffer_manager.fragment_namespace()
        try:
            yield from self._drive_steps(frag_ns)
        finally:
            self.ctx.buffer_manager.drop_namespace(frag_ns)

    def _drive_steps(self, frag_ns: str):
        ctx = self.ctx
        clock = ctx.device.clock
        tracer = ctx.tracer
        pool = ctx.device.processing_pool
        start = clock.now
        buckets_before = clock.buckets()
        streams_before = clock.stream_stats()
        kernels_before = ctx.device.kernel_count
        fused_before = ctx.device.fused_kernel_count
        saved_before = ctx.device.fusion_saved_bytes
        trace_mark = tracer.mark()
        pool.begin_watermark()
        spill_before = ctx.buffer_manager.spill_stats()

        slots: dict[str, GTable] = {}
        consumers = self.physical.slot_consumers()
        profile = self.profile
        deadline = self.deadline

        with tracer.span(
            "query", kind="query", clock=clock, device=ctx.device.spec.name
        ) as qspan:
            queue = deque(self.physical.pipelines)
            done: set[int] = set()
            while queue:
                progressed = False
                for _ in range(len(queue)):
                    pipeline = queue.popleft()
                    if pipeline.dependencies <= done:
                        if ctx.buffer_manager.overlap:
                            self._prefetch_next(pipeline, queue, done)
                        yield from self._pipeline_steps(
                            pipeline, slots, profile, deadline, frag_ns
                        )
                        done.add(pipeline.pid)
                        self._release_slots(
                            pipeline, slots, consumers, self.physical.final_slot
                        )
                        progressed = True
                    else:
                        queue.append(pipeline)
                if not progressed:
                    raise RuntimeError("pipeline dependency cycle detected")

            if deadline is not None:
                deadline.check_at(clock.now)
            result = slots[self.physical.final_slot]
            profile.sim_seconds = clock.now - start
            buckets_after = clock.buckets()
            profile.breakdown = {
                k: buckets_after.get(k, 0.0) - buckets_before.get(k, 0.0)
                for k in set(buckets_after) | set(buckets_before)
            }
            profile.breakdown = {k: v for k, v in profile.breakdown.items() if v > 0}
            profile.kernel_count = ctx.device.kernel_count - kernels_before
            profile.fused_kernels = ctx.device.fused_kernel_count - fused_before
            profile.fusion_saved_bytes = ctx.device.fusion_saved_bytes - saved_before
            profile.output_rows = result.num_rows
            profile.device_mem_peak = pool.watermark
            streams_after = clock.stream_stats()
            hidden = 0.0
            for name, stats in streams_after.items():
                before = streams_before.get(name, {})
                busy_d = stats["busy_s"] - before.get("busy_s", 0.0)
                exposed_d = stats["exposed_s"] - before.get("exposed_s", 0.0)
                if busy_d > 0.0:
                    profile.stream_busy[name] = busy_d
                    # A wait can join stream work issued before this query
                    # started, so clamp per stream rather than summing raw.
                    hidden += max(busy_d - exposed_d, 0.0)
            profile.overlap_hidden_s = hidden
            spill_after = ctx.buffer_manager.spill_stats()
            spill_delta = {
                k: spill_after[k] - spill_before.get(k, 0)
                for k in (
                    "fragment_spills",
                    "fragment_unspills",
                    "spilled_bytes",
                    "unspilled_bytes",
                    "pressure_spills",
                    "disk_spills",
                    "disk_spilled_bytes",
                )
            }
            if any(spill_delta.values()):
                profile.spill = spill_delta
            if profile.stream_busy:
                total_busy = sum(profile.stream_busy.values())
                if total_busy > 0.0:
                    tracer.gauge("overlap.efficiency", hidden / total_busy)
            qspan.set(
                rows_out=profile.output_rows,
                kernel_count=profile.kernel_count,
                pipelines_run=profile.pipelines_run,
                chunks_processed=profile.chunks_processed,
                device_mem_peak=profile.device_mem_peak,
            )
        profile.spans = list(tracer.spans_since(trace_mark))
        self.result = result

    def _pipeline_steps(
        self,
        pipeline: Pipeline,
        slots: dict,
        profile: QueryProfile,
        deadline: Deadline | None = None,
        frag_ns: str = "q0",
    ):
        state: dict = {"slots": slots, "frag_ns": frag_ns}
        clock = self.ctx.device.clock
        tracer = self.ctx.tracer
        with tracer.span(
            f"pipeline-{pipeline.pid}", kind="pipeline", clock=clock, pid=pipeline.pid
        ) as pspan:
            p_start = clock.now
            acct = {
                "op_seconds": {op: 0.0 for op in pipeline.operators},
                "op_rows": {op: 0 for op in pipeline.operators},
                "op_first": {},
                "op_last": {},
                "sink_seconds": 0.0,
                "sink_first": None,
            }
            source_seconds = 0.0
            source_rows = 0
            source_last = p_start
            chunk_iter = self._source_chunks(pipeline, slots)
            while True:
                mark = clock.now
                chunk = next(chunk_iter, _DONE)
                source_seconds += clock.now - mark
                source_last = clock.now
                if chunk is _DONE:
                    break
                source_rows += chunk.num_rows
                if deadline is not None:
                    deadline.check_at(clock.now)
                profile.chunks_processed += 1
                consumed = False
                for _ in self._push_chunk(pipeline, chunk, 0, state, slots, acct):
                    consumed = True
                    yield
                if not consumed:  # chunk dropped mid-pipeline
                    yield
            if self.ctx.buffer_manager.overlap:
                # Pipeline-end stream join: overlapped cold-load chunks this
                # pipeline consumed must land before its sink finalises;
                # only the un-overlapped remainder is exposed here.
                self.ctx.buffer_manager.complete_loads()
            if self.ctx.buffer_manager.sanitizer is not None:
                self.ctx.buffer_manager.sanitizer.on_pipeline_end(
                    f"pipeline-{pipeline.pid}"
                )
            mark = clock.now
            if acct["sink_first"] is None:
                acct["sink_first"] = mark
            with clock.attributed(pipeline.sink.category):
                output = pipeline.sink.finalize(self.ctx, state)
            acct["sink_seconds"] += clock.now - mark
            op_seconds = acct["op_seconds"]
            op_rows = acct["op_rows"]
            op_first = acct["op_first"]
            op_last = acct["op_last"]
            sink_seconds = acct["sink_seconds"]
            sink_first = acct["sink_first"]
            if output is not None:
                slots[pipeline.output_slot] = output
            for op in pipeline.operators:
                profile.operator_timings.append(
                    OperatorTiming(
                        pipeline.pid, op.describe(), op.category, op_seconds[op], op_rows[op]
                    )
                )
            output_rows = output.num_rows if output is not None else 0
            profile.operator_timings.append(
                OperatorTiming(
                    pipeline.pid,
                    pipeline.sink.describe(),
                    pipeline.sink.category,
                    sink_seconds,
                    output_rows,
                )
            )
            profile.pipelines_run += 1
            if tracer.enabled:
                tracer.record_span(
                    pipeline.source.describe(),
                    "operator",
                    start=p_start,
                    end=source_last,
                    parent=pspan,
                    busy_s=source_seconds,
                    rows_out=source_rows,
                    category=pipeline.source.category,
                    role="source",
                )
                for op in pipeline.operators:
                    tracer.record_span(
                        op.describe(),
                        "operator",
                        start=op_first.get(op, p_start),
                        end=op_last.get(op, p_start),
                        parent=pspan,
                        busy_s=op_seconds[op],
                        rows_out=op_rows[op],
                        category=op.category,
                        role="streaming",
                    )
                tracer.record_span(
                    pipeline.sink.describe(),
                    "operator",
                    start=sink_first,
                    end=clock.now,
                    parent=pspan,
                    busy_s=sink_seconds,
                    rows_out=output_rows,
                    category=pipeline.sink.category,
                    role="sink",
                )
                pspan.set(rows_out=output_rows, source_rows=source_rows)

    def _push_chunk(self, pipeline: Pipeline, chunk, idx: int, state, slots, acct):
        """Push one chunk through ``pipeline.operators[idx:]`` and into the
        sink, yielding once per sink consumption (the task granularity the
        scheduler preempts at).

        Supports one-to-many operators: when ``process`` returns a
        :class:`ChunkStream`, each emitted chunk recurses through the
        remaining operators *before* the next one is pulled, so a
        streaming probe's output is never resident all at once.  The
        stream-producing operator's generator owns disposal of its input
        chunk; the pairwise disposal below covers ordinary one-to-one
        operators.
        """
        ctx = self.ctx
        clock = ctx.device.clock
        dispose = self.physical.out_of_core
        ops = pipeline.operators
        while idx < len(ops):
            op = ops[idx]
            mark = clock.now
            acct["op_first"].setdefault(op, mark)
            prev = chunk
            with clock.attributed(op.category):
                out = op.process(ctx, chunk, state)
            acct["op_seconds"][op] += clock.now - mark
            acct["op_last"][op] = clock.now
            idx += 1
            if isinstance(out, ChunkStream):
                it = iter(out.chunks)
                while True:
                    mark = clock.now
                    with clock.attributed(op.category):
                        sub = next(it, _DONE)
                    acct["op_seconds"][op] += clock.now - mark
                    acct["op_last"][op] = clock.now
                    if sub is _DONE:
                        return
                    acct["op_rows"][op] += sub.num_rows
                    yield from self._push_chunk(pipeline, sub, idx, state, slots, acct)
                return
            if dispose and out is not None and out is not prev:
                self._dispose_chunk(prev, out, slots)
            if out is None:
                return
            acct["op_rows"][op] += out.num_rows
            chunk = out
        mark = clock.now
        if acct["sink_first"] is None:
            acct["sink_first"] = mark
        with clock.attributed(pipeline.sink.category):
            pipeline.sink.consume(ctx, chunk, state)
        acct["sink_seconds"] += clock.now - mark
        if dispose and pipeline.sink.consumes_by_copy:
            self._dispose_chunk(chunk, None, slots)
        yield

    def _dispose_chunk(self, prev: GTable, nxt: GTable | None, slots: dict) -> None:
        """Out-of-core chunk disposal: free ``prev``'s buffers once nothing
        carries them forward.

        Streaming operators may pass column objects through by reference
        (a bare column projection returns the input column), so a buffer is
        freed only when it is absent from the successor chunk AND not owned
        by a protected table — the buffer-manager cache, a live fragment,
        or a materialised slot.  Each buffer flows through the chunk chain
        exactly once, so every free here happens at most once; without this
        protocol dead intermediates accumulate in the processing pool for
        the whole query, which is exactly what an over-HBM working set
        cannot afford.
        """
        keep = {id(c) for c in nxt.columns} if nxt is not None else set()
        protected = {id(c) for c in self.ctx.buffer_manager.protected_columns()}
        for table in slots.values():
            if isinstance(table, GTable):
                protected.update(id(c) for c in table.columns)
        for col in prev.columns:
            if id(col) in keep or id(col) in protected:
                continue
            col.free()

    def _prefetch_next(self, current: Pipeline, queue, done: set[int]) -> None:
        """Scan-prefetch hook: before running ``current``, issue an async
        cold load for the base table of the next pipeline that becomes
        ready once ``current`` completes, so its copy streams behind this
        pipeline's kernels."""
        will_be_done = done | {current.pid}
        for candidate in queue:
            if candidate.dependencies <= will_be_done and isinstance(
                candidate.source, TableScan
            ):
                host = self.ctx.catalog.get(candidate.source.table_name)
                if host is not None:
                    self.ctx.buffer_manager.prefetch(candidate.source.table_name, host)
                return

    def _source_chunks(self, pipeline: Pipeline, slots: dict):
        source = pipeline.source
        if isinstance(source, IntermediateSource):
            table = slots[source.slot]
            batch = self.ctx.batch_rows
            if batch is None or table.num_rows <= batch:
                yield table
                return
            for start in range(0, table.num_rows, batch):
                yield slice_table(table, start, min(batch, table.num_rows - start))
            return
        yield from source.chunks(self.ctx)

    def _release_slots(self, pipeline, slots, consumers, final_slot) -> None:
        """Drop slot references once all consumers finished.

        Buffer bytes themselves are reclaimed by the engine's per-query
        RMM pool reset (intermediates freely share buffers, so per-slot
        frees would be unsound); dropping the reference here just keeps the
        slot table small for long plans.
        """
        for slot in pipeline.used_slots():
            consumers[slot] -= 1
            if consumers[slot] == 0 and slot != final_slot:
                retired = slots.pop(slot, None)
                if isinstance(retired, PartitionedBuild):
                    # Out-of-core builds own tiered-store fragments, not
                    # pool buffers; release them as soon as the last probe
                    # finishes so later pipelines reclaim the space.
                    for name in retired.leaves.values():
                        self.ctx.buffer_manager.drop_fragment(name)


class PipelineExecutor:
    """Runs a :class:`PhysicalPlan` on one device."""

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx

    def start(
        self, physical: PhysicalPlan, deadline: Deadline | None = None
    ) -> QueryRun:
        """Begin task-granular execution; the caller drives the returned
        :class:`QueryRun` one chunk-task at a time (the serving path)."""
        return QueryRun(self.ctx, physical, deadline)

    def run(
        self, physical: PhysicalPlan, deadline: Deadline | None = None
    ) -> tuple[GTable, QueryProfile]:
        """Execute all pipelines; returns the result table and a profile.

        A :class:`~repro.core.deadline.Deadline` (simulated-time budget) is
        enforced at chunk and pipeline boundaries — the executor stops
        pushing work as soon as the clock passes the deadline, raising
        :class:`~repro.core.deadline.DeadlineExceededError`.
        """
        run = self.start(physical, deadline)
        while run.step():
            pass
        return run.result, run.profile
