"""The pipeline executor: global task queue + push-based execution.

Reproduces §3.2.2's model:

* the physical plan is a set of **pipelines**; each is a task enqueued in
  a global queue and picked up when its dependencies are satisfied (the
  paper's idle CPU threads pulling tasks — execution here is sequential
  over the ready set, which is equivalent under a simulated clock);
* within a pipeline, execution is **push-based**: the executor owns all
  state (the ``state`` dict per pipeline plus the shared slot table) and
  pushes chunks into stateless operators;
* every operator's simulated time is attributed to its Figure-5 category,
  producing the per-query breakdown the paper reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..kernels import GTable, slice_table
from .deadline import Deadline
from .operators.base import ExecutionContext
from .operators.scan import IntermediateSource
from .planner import PhysicalPlan, Pipeline

__all__ = ["PipelineExecutor", "QueryProfile"]


@dataclass
class OperatorTiming:
    """Simulated time spent in one operator of one pipeline."""

    pipeline: int
    operator: str
    category: str
    seconds: float
    rows_out: int


@dataclass
class QueryProfile:
    """Timing and counters for one query execution."""

    sim_seconds: float = 0.0
    breakdown: dict = field(default_factory=dict)  # category -> seconds
    kernel_count: int = 0
    pipelines_run: int = 0
    chunks_processed: int = 0
    output_rows: int = 0
    operator_timings: list = field(default_factory=list)

    def breakdown_fractions(self) -> dict:
        total = sum(self.breakdown.values())
        if total == 0:
            return {k: 0.0 for k in self.breakdown}
        return {k: v / total for k, v in self.breakdown.items()}

    def explain_analyze(self) -> str:
        """EXPLAIN ANALYZE-style report: per-operator simulated time."""
        lines = [
            f"total {self.sim_seconds * 1000:.3f} ms, "
            f"{self.kernel_count} kernels, {self.pipelines_run} pipelines, "
            f"{self.output_rows} rows out"
        ]
        current = None
        for t in self.operator_timings:
            if t.pipeline != current:
                lines.append(f"Pipeline {t.pipeline}:")
                current = t.pipeline
            lines.append(
                f"  {t.operator:<50s} {t.seconds * 1e6:10.1f} us"
                f"  [{t.category}]  rows={t.rows_out}"
            )
        return "\n".join(lines)


class PipelineExecutor:
    """Runs a :class:`PhysicalPlan` on one device."""

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx

    def run(
        self, physical: PhysicalPlan, deadline: Deadline | None = None
    ) -> tuple[GTable, QueryProfile]:
        """Execute all pipelines; returns the result table and a profile.

        A :class:`~repro.core.deadline.Deadline` (simulated-time budget) is
        enforced at chunk and pipeline boundaries — the executor stops
        pushing work as soon as the clock passes the deadline, raising
        :class:`~repro.core.deadline.DeadlineExceededError`.
        """
        clock = self.ctx.device.clock
        start = clock.now
        buckets_before = clock.buckets()
        kernels_before = self.ctx.device.kernel_count

        slots: dict[str, GTable] = {}
        consumers = physical.slot_consumers()
        profile = QueryProfile()

        queue = deque(physical.pipelines)
        done: set[int] = set()
        while queue:
            progressed = False
            for _ in range(len(queue)):
                pipeline = queue.popleft()
                if pipeline.dependencies <= done:
                    self._run_pipeline(pipeline, slots, profile, deadline)
                    done.add(pipeline.pid)
                    self._release_slots(pipeline, slots, consumers, physical.final_slot)
                    progressed = True
                else:
                    queue.append(pipeline)
            if not progressed:
                raise RuntimeError("pipeline dependency cycle detected")

        if deadline is not None:
            deadline.check_at(clock.now)
        result = slots[physical.final_slot]
        profile.sim_seconds = clock.now - start
        buckets_after = clock.buckets()
        profile.breakdown = {
            k: buckets_after.get(k, 0.0) - buckets_before.get(k, 0.0)
            for k in set(buckets_after) | set(buckets_before)
        }
        profile.breakdown = {k: v for k, v in profile.breakdown.items() if v > 0}
        profile.kernel_count = self.ctx.device.kernel_count - kernels_before
        profile.output_rows = result.num_rows
        return result, profile

    # -- internals ----------------------------------------------------------

    def _run_pipeline(
        self,
        pipeline: Pipeline,
        slots: dict,
        profile: QueryProfile,
        deadline: Deadline | None = None,
    ) -> None:
        state: dict = {"slots": slots}
        clock = self.ctx.device.clock
        op_seconds = {op: 0.0 for op in pipeline.operators}
        op_rows = {op: 0 for op in pipeline.operators}
        sink_seconds = 0.0
        for chunk in self._source_chunks(pipeline, slots):
            if deadline is not None:
                deadline.check_at(clock.now)
            profile.chunks_processed += 1
            for op in pipeline.operators:
                mark = clock.now
                with clock.attributed(op.category):
                    chunk = op.process(self.ctx, chunk, state)
                op_seconds[op] += clock.now - mark
                if chunk is None:
                    break
                op_rows[op] += chunk.num_rows
            if chunk is None:
                continue
            mark = clock.now
            with clock.attributed(pipeline.sink.category):
                pipeline.sink.consume(self.ctx, chunk, state)
            sink_seconds += clock.now - mark
        mark = clock.now
        with clock.attributed(pipeline.sink.category):
            output = pipeline.sink.finalize(self.ctx, state)
        sink_seconds += clock.now - mark
        if output is not None:
            slots[pipeline.output_slot] = output
        for op in pipeline.operators:
            profile.operator_timings.append(
                OperatorTiming(
                    pipeline.pid, op.describe(), op.category, op_seconds[op], op_rows[op]
                )
            )
        profile.operator_timings.append(
            OperatorTiming(
                pipeline.pid,
                pipeline.sink.describe(),
                pipeline.sink.category,
                sink_seconds,
                output.num_rows if output is not None else 0,
            )
        )
        profile.pipelines_run += 1

    def _source_chunks(self, pipeline: Pipeline, slots: dict):
        source = pipeline.source
        if isinstance(source, IntermediateSource):
            table = slots[source.slot]
            batch = self.ctx.batch_rows
            if batch is None or table.num_rows <= batch:
                yield table
                return
            for start in range(0, table.num_rows, batch):
                yield slice_table(table, start, min(batch, table.num_rows - start))
            return
        yield from source.chunks(self.ctx)

    def _release_slots(self, pipeline, slots, consumers, final_slot) -> None:
        """Drop slot references once all consumers finished.

        Buffer bytes themselves are reclaimed by the engine's per-query
        RMM pool reset (intermediates freely share buffers, so per-slot
        frees would be unsound); dropping the reference here just keeps the
        slot table small for long plans.
        """
        for slot in pipeline.used_slots():
            consumers[slot] -= 1
            if consumers[slot] == 0 and slot != final_slot:
                slots.pop(slot, None)
