"""Sirius: the GPU-native SQL engine's public API.

A :class:`SiriusEngine` owns one simulated GPU device, its buffer manager,
and an operator registry, and executes Substrait-style plans end to end on
the device — scan to result — per the paper's GPU-native design principle.
The CPU is involved only for the fallback path.

Typical use (single node)::

    engine = SiriusEngine.for_spec(GH200)
    result = engine.execute(plan, catalog={"lineitem": table})
    print(result.pretty())
    print(engine.last_profile.breakdown)   # Figure-5 style attribution

As a *drop-in accelerator* the engine is attached to a host database (see
``repro.hosts.miniduck``) which routes its optimised plans here instead of
its own CPU engine — with zero change to the host's user interface.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..columnar import Table
from ..gpu.device import Device
from ..gpu.memory import OutOfDeviceMemory
from ..gpu.specs import GH200, DeviceSpec
from ..obs import NULL_TRACER
from ..kernels import groupby as groupby_kernel
from ..plan import Plan
from .buffer_manager import BufferManager
from .deadline import Deadline
from .executor import PipelineExecutor, QueryProfile, QueryRun
from .fallback import FALLBACK_EXCEPTIONS, DegradationTier, FallbackHandler
from .operators.base import ExecutionContext, OperatorRegistry
from .operators.join import custom_sort_merge_join, libcudf_join
from .planner import compile_plan

__all__ = ["SiriusEngine"]

# Batch size used by the out-of-core retry tier when the original run was
# not batched (or used larger batches): small enough to fit tight
# processing pools, large enough to keep kernels efficient.
OOC_RETRY_BATCH_ROWS = 65_536


def _libcudf_groupby(keys, specs):
    return groupby_kernel(keys, specs)


def _custom_hash_groupby(keys, specs):
    """Custom-kernel variant: hash path even for string keys (§3.4 hints)."""
    return groupby_kernel(keys, specs, force_hash=True)


def default_registry() -> OperatorRegistry:
    """Registry with the libcudf implementations active and the custom
    CUDA-kernel stand-ins available for swapping (§3.2.2)."""
    registry = OperatorRegistry()
    registry.register("join", "libcudf", libcudf_join, make_active=True)
    registry.register("join", "custom", custom_sort_merge_join)
    registry.register("groupby", "libcudf", _libcudf_groupby, make_active=True)
    registry.register("groupby", "custom", _custom_hash_groupby)
    return registry


class SiriusEngine:
    """GPU-native execution engine consuming Substrait-style plans."""

    def __init__(
        self,
        device: Device,
        enable_spill: bool = True,
        batch_rows: int | None = None,
        host_executor: Callable[[Plan], Table] | None = None,
        compress_cache: bool = False,
        pipeline_cpu_executor: Callable[[Plan, Mapping[str, Table]], Table] | None = None,
        tracer=None,
        overlap: bool = False,
        load_chunk_bytes: int | None = None,
        out_of_core: bool = False,
        pinned_spill_budget_bytes: int | None = None,
        sanitize: bool = False,
        fusion: bool = False,
    ):
        """
        Args:
            device: The simulated GPU to execute on.
            enable_spill: Allow the buffer manager to spill cached tables
                to pinned host memory under pressure (§3.4 out-of-core).
            batch_rows: If set, pipelines stream inputs in batches of this
                many rows instead of whole tables (§3.4 batch execution).
            host_executor: Optional host-engine callback for the graceful
                CPU fallback path (the final ``cpu-plan`` tier).
            compress_cache: FOR+bit-pack integer columns in the caching
                region (§3.4's lightweight-compression extension).
            pipeline_cpu_executor: Optional ``(plan, catalog) -> Table``
                CPU callback for the ``cpu-pipeline`` degradation tier —
                re-runs just the failed pipeline/fragment plan on the
                node's CPU (used by hosts that execute fragment-at-a-time,
                e.g. MiniDoris).
            tracer: Observability sink (:class:`repro.obs.Tracer`); the
                no-op null tracer by default, keeping untraced execution
                byte-identical.
            overlap: Enable copy/compute overlap — cold loads are chunked
                onto the device's copy stream and prefetched ahead of the
                consuming pipeline.  Off by default; the default path is
                byte-identical to the synchronous loader.
            load_chunk_bytes: Chunk granularity of overlapped loads
                (defaults to the buffer manager's 1 MiB).
            out_of_core: Compile keyed joins and group-bys to their
                radix-partitioned variants whose partitions spill through
                the tiered store (device -> pinned host -> disk) under
                memory pressure, so over-HBM working sets complete on the
                GPU instead of falling back.  Off by default; the default
                path is byte-identical to the seed engine.
            pinned_spill_budget_bytes: Pinned host staging budget for
                spilled partitions before they demote to the simulated
                disk tier (defaults to the processing pool's capacity
                when out-of-core execution is active).
            sanitize: Attach a :class:`~repro.analysis.sanitizers
                .Sanitizer` to the device, pool, and buffer manager:
                happens-before, shadow-ledger, and drift checks run
                against every query (SA01–SA08) and the accumulated
                findings are read from ``engine.sanitizer``.  Purely
                observational — a sanitized run is byte-identical to an
                unsanitized one.
            fusion: Collapse each pipeline's runs of adjacent filters and
                projections (plus eligible join residual filters) into
                single :class:`~.operators.fused.FusedOp` regions with
                compiled expressions — one read and one write per chunk,
                interior materialisations priced at zero.  Off by
                default; the default path compiles the seed operator
                tree unchanged and results are byte-identical either way.
        """
        self.device = device
        self.tracer = tracer if tracer is not None else NULL_TRACER
        device.tracer = self.tracer
        bm_kwargs = {}
        if load_chunk_bytes is not None:
            bm_kwargs["load_chunk_bytes"] = load_chunk_bytes
        self.buffer_manager = BufferManager(
            device,
            enable_spill=enable_spill,
            compress_cache=compress_cache,
            overlap=overlap,
            **bm_kwargs,
        )
        self.registry = default_registry()
        self.batch_rows = batch_rows
        self.fallback = FallbackHandler(host_executor, tracer=self.tracer)
        self.fallback.memory_probe = self._memory_probe
        self.pipeline_cpu_executor = pipeline_cpu_executor
        self.last_profile: QueryProfile | None = None
        self.queries_executed = 0
        self.out_of_core = out_of_core
        self.fusion = fusion
        self._pinned_spill_budget_bytes = pinned_spill_budget_bytes
        self.sanitizer = None
        if sanitize:
            from ..analysis.sanitizers import Sanitizer

            self.sanitizer = Sanitizer()
            self.sanitizer.attach(device, self.buffer_manager)
        if out_of_core:
            self._install_pressure_hooks()
            if self.batch_rows is None:
                # Out-of-core execution needs bounded chunks: streaming in
                # whole-table chunks would put the full probe side in the
                # pool at once, defeating the partitioned spill.
                self.batch_rows = OOC_RETRY_BATCH_ROWS

    @classmethod
    def for_spec(
        cls,
        spec: DeviceSpec = GH200,
        memory_limit_gb: float | None = None,
        caching_fraction: float = 0.5,
        **kwargs,
    ) -> "SiriusEngine":
        """Build an engine on a fresh device of the given hardware spec.

        The default 50/50 caching/processing split is the paper's
        evaluation configuration.
        """
        device = Device(
            spec, caching_fraction=caching_fraction, memory_limit_gb=memory_limit_gb
        )
        return cls(device, **kwargs)

    # -- configuration ----------------------------------------------------------

    def use_implementation(self, op_kind: str, impl_name: str) -> None:
        """Switch an operator between implementations, e.g.
        ``use_implementation("groupby", "custom")``."""
        self.registry.use(op_kind, impl_name)

    def set_host_executor(self, host_executor: Callable[[Plan], Table]) -> None:
        self.fallback.host_executor = host_executor

    # -- static analysis --------------------------------------------------------

    def analyze(self, plan: Plan, catalog: Mapping[str, Table] | None = None):
        """Statically analyze ``plan`` against this engine's device.

        Advisory: :meth:`execute` never consults the report (runtime
        behaviour is owned by the degradation ladder); serving admission
        does, via ``ServingScheduler(static_admission=True)``.  Returns an
        :class:`~repro.analysis.AnalysisReport`.
        """
        from ..analysis import analyze_plan

        return analyze_plan(plan, catalog, self.device)

    def _install_pressure_hooks(self) -> None:
        """Route processing-pool allocation pressure into partition spills
        (instead of straight to :class:`OutOfDeviceMemory`) and cap the
        pinned staging tier so overflow demotes to the simulated disk."""
        pool = self.device.processing_pool
        pool.pressure_callback = self.buffer_manager.handle_pressure
        if self.buffer_manager.pinned_fragment_budget is None:
            budget = self._pinned_spill_budget_bytes
            if budget is None:
                budget = pool.capacity
            self.buffer_manager.pinned_fragment_budget = budget

    def _memory_probe(self) -> dict:
        """Memory state sampled into :class:`FallbackEvent` records."""
        bm = self.buffer_manager
        return {
            "memory_watermark": self.device.processing_pool.stats().in_use,
            # Cached tables pushed to pinned host + partition fragments
            # spilled: everything the engine moved trying to stay on-GPU.
            "spill_bytes_attempted": bm.pinned_host_bytes + bm.spilled_fragment_bytes,
        }

    def set_pipeline_cpu_executor(
        self, executor: Callable[[Plan, Mapping[str, Table]], Table]
    ) -> None:
        self.pipeline_cpu_executor = executor

    # -- execution --------------------------------------------------------------

    def execute(
        self, plan: Plan, catalog: Mapping[str, Table], deadline_s: float | None = None
    ) -> Table:
        """Execute a plan against host ``catalog`` tables; returns a host
        table (device->host copy of the result is charged).

        Recoverable failures walk the degradation ladder: device OOM first
        retries on the GPU with spilling + batched out-of-core execution,
        then (if wired) the ``cpu-pipeline`` tier, then the registered host
        executor.  ``deadline_s`` is a simulated-time budget enforced at
        pipeline boundaries; exceeding it raises
        :class:`~repro.core.deadline.DeadlineExceededError`, which is *not*
        absorbed by any tier.
        """
        plan.validate()
        deadline = (
            Deadline(deadline_s, self.device.clock) if deadline_s is not None else None
        )
        relaunches_before = self.device.kernel_relaunches

        def gpu_run() -> Table:
            self.buffer_manager.clear_fragments()
            self.device.reset_processing_pool()
            ctx = ExecutionContext(
                device=self.device,
                buffer_manager=self.buffer_manager,
                catalog=catalog,
                registry=self.registry,
                batch_rows=self.batch_rows,
                tracer=self.tracer,
            )
            physical = compile_plan(
                plan, out_of_core=self.out_of_core, fusion=self.fusion
            )
            executor = PipelineExecutor(ctx)
            gtable, profile = executor.run(physical, deadline=deadline)
            self.last_profile = profile
            result = gtable.to_host()  # deep copy back to the host format
            self.buffer_manager.clear_fragments()
            return result

        def ooc_partitioned_retry(_plan: Plan, _exc: BaseException) -> Table:
            # Same query recompiled with partitioned joins/group-bys whose
            # state spills through the tiered store — stays on the GPU
            # where the batched retry below would thrash or still OOM.
            saved_ooc = self.out_of_core
            saved_spill = self.buffer_manager.enable_spill
            saved_batch = self.batch_rows
            self.out_of_core = True
            self._install_pressure_hooks()
            self.buffer_manager.enable_spill = True
            self.batch_rows = min(saved_batch or OOC_RETRY_BATCH_ROWS, OOC_RETRY_BATCH_ROWS)
            try:
                return gpu_run()
            finally:
                self.out_of_core = saved_ooc
                self.buffer_manager.enable_spill = saved_spill
                self.batch_rows = saved_batch

        def ooc_retry(_plan: Plan, _exc: BaseException) -> Table:
            # Same query, out-of-core configuration: spill cached tables
            # under pressure and stream pipelines in small batches.  The
            # wasted first attempt has already been charged to the clock.
            saved_spill = self.buffer_manager.enable_spill
            saved_batch = self.batch_rows
            self.buffer_manager.enable_spill = True
            self.batch_rows = min(saved_batch or OOC_RETRY_BATCH_ROWS, OOC_RETRY_BATCH_ROWS)
            try:
                return gpu_run()
            finally:
                self.buffer_manager.enable_spill = saved_spill
                self.batch_rows = saved_batch

        tiers = []
        tiers.append(
            DegradationTier(
                "gpu-retry-spill", ooc_retry, (OutOfDeviceMemory,), gpu_result=True
            )
        )
        if not self.out_of_core:
            # Out-of-core engines already run partitioned.  For in-core
            # engines an OOM escalates through GPU-resident remedies in
            # cost order — first the cheap batched retry above, then full
            # partitioned out-of-core execution — before any CPU
            # degradation is considered.
            tiers.append(
                DegradationTier(
                    "gpu-spill", ooc_partitioned_retry, (OutOfDeviceMemory,), gpu_result=True
                )
            )
        if self.pipeline_cpu_executor is not None:
            tiers.append(
                DegradationTier(
                    "cpu-pipeline",
                    lambda p, _exc: self.pipeline_cpu_executor(p, catalog),
                    FALLBACK_EXCEPTIONS,
                )
            )
        result, tier = self.fallback.run(
            gpu_run, plan, tiers=tuple(tiers), clock=self.device.clock
        )
        self.queries_executed += 1
        if self.sanitizer is not None and (tier is None or tier.gpu_result):
            # CPU-tier results are excluded: a failed GPU attempt's
            # fragments are cleared by the *next* gpu_run by design.
            self.sanitizer.check_query_end(
                self, f"engine.execute:q{self.queries_executed}"
            )
        if tier is not None and not tier.gpu_result:
            self.last_profile = None  # GPU profile would be misleading
        if self.last_profile is not None:
            self.last_profile.retries = self.device.kernel_relaunches - relaunches_before
            if tier is not None:
                self.last_profile.fallback_tier = tier.name
        return result

    def start_query(
        self,
        plan: Plan,
        catalog: Mapping[str, Table],
        deadline: Deadline | None = None,
        tracer=None,
        batch_rows: int | None = None,
        out_of_core: bool | None = None,
    ) -> QueryRun:
        """Begin task-granular execution of a plan (the serving path).

        Unlike :meth:`execute`, this does **not** reset the processing pool
        (concurrent queries share it; the serving scheduler reclaims each
        query's intermediates via per-owner release) and does not walk the
        degradation ladder — the scheduler owns retry policy because a
        retry must re-enter the admission queue.  The returned
        :class:`~repro.core.executor.QueryRun` is advanced one chunk-task
        at a time with :meth:`~repro.core.executor.QueryRun.step`.

        Args:
            plan: The logical plan to execute.
            catalog: Host tables by name.
            deadline: Optional per-query resource envelope; queue wait
                should already be charged via ``Deadline.charge_wait``.
            tracer: Per-query observability sink (defaults to the
                engine's); serving passes one tracer per query so span
                stacks of interleaved queries never share state.
            batch_rows: Override the engine's streaming batch size for
                this query only (serving uses small batches so queries
                interleave at fine granularity).
            out_of_core: Override the engine's out-of-core mode for this
                query only (serving admits over-HBM queries as streaming
                jobs on the spill tier); ``None`` = engine default.
        """
        plan.validate()
        ooc = self.out_of_core if out_of_core is None else out_of_core
        resolved_batch = batch_rows if batch_rows is not None else self.batch_rows
        if ooc:
            self._install_pressure_hooks()
            if resolved_batch is None:
                resolved_batch = OOC_RETRY_BATCH_ROWS
        ctx = ExecutionContext(
            device=self.device,
            buffer_manager=self.buffer_manager,
            catalog=catalog,
            registry=self.registry,
            batch_rows=resolved_batch,
            tracer=tracer if tracer is not None else self.tracer,
        )
        physical = compile_plan(plan, out_of_core=ooc, fusion=self.fusion)
        return PipelineExecutor(ctx).start(physical, deadline=deadline)

    def explain_physical(self, plan: Plan) -> str:
        """Render the pipeline decomposition of a plan."""
        return compile_plan(plan, fusion=self.fusion).explain()

    def explain_analyze(self, plan: Plan, catalog: Mapping[str, Table]) -> str:
        """Execute the plan and render per-operator simulated timings
        (EXPLAIN ANALYZE).  The result table is discarded."""
        self.execute(plan, catalog)
        if self.last_profile is None:
            return "(query fell back to the host engine; no GPU profile)"
        return self.last_profile.explain_analyze()

    # -- maintenance ----------------------------------------------------------

    def warm_cache(self, catalog: Mapping[str, Table], names=None) -> None:
        """Pre-load tables into the caching region (the paper reports hot
        runs; benchmarks call this before timing)."""
        for name in names if names is not None else catalog:
            self.buffer_manager.get_table(name, catalog[name])
        # "Warm" means fully resident: join any overlapped load chunks now
        # so the first timed query never pays for warm-up copies.
        self.buffer_manager.complete_loads()

    def drop_cached(self, name: str) -> None:
        self.buffer_manager.drop(name)

    def stats(self) -> dict:
        report = {
            "queries_executed": self.queries_executed,
            "fallbacks": self.fallback.fallback_count,
            "device": self.device.spec.name,
            "kernel_count": self.device.kernel_count,
        }
        report.update(self.buffer_manager.stats())
        return report
