"""Aggregation sinks: grouped (group-by) and global (reduction).

The planner decomposes ``avg`` into sum/count here (the same decomposition
the paper notes is missing from Sirius' *distributed* mode — our
distributed layer supplies it explicitly as a future-work extension).

Aggregate inputs that are expressions (e.g. ``sum(l_extendedprice * (1 -
l_discount))``) are evaluated per chunk before accumulation, so the sink
itself only ever aggregates materialised columns.
"""

from __future__ import annotations

from ...columnar import Field, Schema, Table
from ...kernels import AggSpec, GTable, binary_arith, concat_gtables, fill_constant, reduce_column
from ...plan import AggregateCall
from ...plan.expressions import aggregate_result_type
from .. import expr_eval
from .base import Category, ExecutionContext, SinkOperator, dispose_consumed

__all__ = ["GroupBySink", "PartitionedGroupBySink", "GlobalAggSink"]


class GroupBySink(SinkOperator):
    """Grouped aggregation pipeline breaker."""

    category = Category.GROUPBY

    def __init__(self, group_indices, measures, input_schema: Schema):
        """
        Args:
            group_indices: Ordinals of the grouping keys in the input.
            measures: ``[(AggregateCall, output_name), ...]``.
            input_schema: Schema of incoming chunks.
        """
        self.group_indices = list(group_indices)
        self.measures = list(measures)
        self.input_schema = input_schema

    def output_schema(self) -> Schema:
        fields = [self.input_schema.fields[i] for i in self.group_indices]
        for agg, name in self.measures:
            fields.append(Field(name, aggregate_result_type(agg, self.input_schema)))
        return Schema(fields)

    def consume(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> None:
        state.setdefault("chunks", []).append(chunk)

    def finalize(self, ctx: ExecutionContext, state: dict) -> GTable:
        chunks = state.get("chunks", [])
        if not chunks:
            return GTable.from_host(ctx.device, Table.empty(self.output_schema()))
        data = chunks[0] if len(chunks) == 1 else concat_gtables(chunks)
        return self._aggregate_table(ctx, data)

    def _aggregate_table(self, ctx: ExecutionContext, data: GTable) -> GTable:
        """Run the grouped aggregation over one materialised table (the
        whole input in-core; one radix partition of it out-of-core)."""
        keys = [data.columns[i] for i in self.group_indices]
        specs: list[AggSpec] = []
        post_avg: list[tuple[int, int, int]] = []  # (out_pos, sum_pos, count_pos)
        for agg, name in self.measures:
            arg_col = (
                expr_eval.evaluate_to_column(agg.arg, data) if agg.arg is not None else None
            )
            if agg.op == "avg":
                # Decompose: avg = sum / count, fused back after the kernel.
                sum_pos = len(specs)
                specs.append(AggSpec("sum", arg_col, f"__avg_sum_{name}"))
                specs.append(AggSpec("count", arg_col, f"__avg_cnt_{name}"))
                post_avg.append((len(post_avg), sum_pos, sum_pos + 1))
                continue
            op = agg.op
            if op == "count" and agg.distinct:
                op = "count_distinct"
            if op == "count" and arg_col is None:
                op = "count_star"
            specs.append(AggSpec(op, arg_col, name))

        impl = ctx.registry.get("groupby")
        raw = impl(keys, specs)

        # Reassemble in declared measure order, fusing avg columns.
        out_schema = self.output_schema()
        n_keys = len(self.group_indices)
        out_cols = list(raw.columns[:n_keys])
        raw_pos = n_keys
        spec_pos = 0
        for agg, name in self.measures:
            if agg.op == "avg":
                sums = raw.columns[raw_pos]
                counts = raw.columns[raw_pos + 1]
                out_cols.append(binary_arith("divide", sums, counts))
                raw_pos += 2
                spec_pos += 2
            else:
                out_cols.append(raw.columns[raw_pos])
                raw_pos += 1
                spec_pos += 1
        return GTable(out_schema, out_cols, ctx.device)

    def describe(self) -> str:
        return f"GroupBy(keys={self.group_indices}, measures={[n for _, n in self.measures]})"


class PartitionedGroupBySink(GroupBySink):
    """Out-of-core grouped aggregation: radix-partitions input rows by the
    group keys into buffer-manager fragments instead of buffering every
    chunk resident.

    Because the partition hash covers exactly the grouping keys, every
    group lives wholly inside one partition, so aggregating partitions
    independently and concatenating the per-partition results is exact
    (including the avg = sum/count decomposition, which fuses per
    partition).  Partitions spill device → pinned host → disk under
    pressure and come back one at a time in ``finalize``, bounding the
    resident working set to one partition (recursively re-split while it
    exceeds ``partition_budget_bytes``, up to ``max_depth`` levels).
    """

    consumes_by_copy = True  # partitions are scattered copies; the chunk may be freed

    def __init__(
        self,
        group_indices,
        measures,
        input_schema: Schema,
        slot: str,
        num_partitions: int = 8,
        partition_budget_bytes: int | None = None,
        max_depth: int = 3,
    ):
        super().__init__(group_indices, measures, input_schema)
        if num_partitions < 2:
            raise ValueError("partitioned group-by needs num_partitions >= 2")
        self.slot = slot  # unique fragment-name prefix for this sink
        self.num_partitions = num_partitions
        self.partition_budget_bytes = partition_budget_bytes
        self.max_depth = max_depth

    def consume(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> None:
        from ...kernels import partition_groupby_input

        parts = partition_groupby_input(
            chunk, self.group_indices, self.num_partitions, level=0
        )
        dispose_consumed(ctx, chunk, state)  # partitions are copies; drop the input now
        bm = ctx.buffer_manager
        by_part = state.setdefault("part_chunks", {p: [] for p in range(self.num_partitions)})
        seq = state.setdefault("frag_seq", 0)
        ns = state.get("frag_ns", "q0")
        for p, part in enumerate(parts):
            if part is None:
                continue
            name = f"{ns}/{self.slot}/c{seq}.{p}"
            seq += 1
            bm.put_fragment(name, part)
            by_part[p].append(name)
        state["frag_seq"] = seq

    def finalize(self, ctx: ExecutionContext, state: dict) -> GTable:
        by_part = state.get("part_chunks")
        if not by_part or all(not names for names in by_part.values()):
            return GTable.from_host(ctx.device, Table.empty(self.output_schema()))
        bm = ctx.buffer_manager
        budget = self.partition_budget_bytes
        if budget is None:
            budget = max(ctx.device.processing_pool.capacity // 4, 1)
        results: list[GTable] = []
        for p in sorted(by_part):
            names = by_part[p]
            if not names:
                continue
            tables = [bm.get_fragment(n) for n in names]
            merged = concat_gtables(tables)
            for n in names:
                bm.drop_fragment(n)
            self._aggregate_partition(ctx, merged, budget, 1, results)
        if not results:
            return GTable.from_host(ctx.device, Table.empty(self.output_schema()))
        if len(results) == 1:
            return results[0]
        out = concat_gtables(results)
        for r in results:  # per-partition aggregates are exclusively ours
            r.free()
        return out

    def _aggregate_partition(
        self, ctx: ExecutionContext, table: GTable, budget: int, level: int, results: list
    ) -> None:
        """Aggregate one partition, re-splitting at the next salted radix
        level while it exceeds the partition budget."""
        from ...kernels import partition_groupby_input

        if level <= self.max_depth and table.nbytes > budget and table.num_rows > 1:
            parts = partition_groupby_input(
                table, self.group_indices, self.num_partitions, level=level
            )
            table.free()
            for sub in parts:
                if sub is not None:
                    self._aggregate_partition(ctx, sub, budget, level + 1, results)
            return
        results.append(self._aggregate_table(ctx, table))
        table.free()

    def describe(self) -> str:
        return (
            f"PartitionedGroupBy(keys={self.group_indices}, "
            f"measures={[n for _, n in self.measures]}, fanout={self.num_partitions})"
        )


class GlobalAggSink(SinkOperator):
    """Global reductions (no GROUP BY) - always produce exactly one row."""

    category = Category.AGGREGATION

    def __init__(self, measures, input_schema: Schema):
        self.measures = list(measures)
        self.input_schema = input_schema

    def output_schema(self) -> Schema:
        return Schema(
            [
                Field(name, aggregate_result_type(agg, self.input_schema))
                for agg, name in self.measures
            ]
        )

    def consume(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> None:
        state.setdefault("chunks", []).append(chunk)

    def finalize(self, ctx: ExecutionContext, state: dict) -> GTable:
        chunks = state.get("chunks", [])
        out_schema = self.output_schema()
        if not chunks:
            data = None
        else:
            data = chunks[0] if len(chunks) == 1 else concat_gtables(chunks)

        columns = []
        for (agg, name), field in zip(self.measures, out_schema):
            value = self._reduce(agg, data)
            if value is None:
                col = fill_constant(ctx.device, 1, 0, field.dtype)
                import numpy as np

                col.validity = ctx.device.new_buffer(np.array([False]))
                columns.append(col)
            else:
                columns.append(fill_constant(ctx.device, 1, value, field.dtype))
        return GTable(out_schema, columns, ctx.device)

    def _reduce(self, agg: AggregateCall, data: GTable | None):
        if data is None or data.num_rows == 0:
            return 0 if agg.op in ("count", "count_star") else None
        if agg.op == "count_star":
            return data.num_rows
        col = expr_eval.evaluate_to_column(agg.arg, data)
        op = agg.op
        if op == "count" and agg.distinct:
            op = "count_distinct"
        if op == "avg":
            op = "mean"
        return reduce_column(col, op)

    def describe(self) -> str:
        return f"GlobalAgg({[n for _, n in self.measures]})"
