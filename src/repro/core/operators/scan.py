"""Table scan sources: cached base tables and intermediate slots."""

from __future__ import annotations

from ...columnar import Schema
from ...kernels import GTable, mask_table, slice_table
from .. import expr_eval
from .base import Category, ExecutionContext, SourceOperator, UnsupportedFeatureError

__all__ = ["TableScan", "IntermediateSource"]


class TableScan(SourceOperator):
    """Scan a named base table from the buffer manager's caching region.

    Applies the ReadRel's column projection (free: column pruning is just
    buffer selection) and any pushed-down filter (charged as a filter).
    """

    category = Category.OTHER  # scan time itself; the pushed filter is FILTER

    def __init__(self, table_name: str, schema: Schema, projection, filter_expr):
        self.table_name = table_name
        self.schema = schema
        self.projection = list(projection) if projection is not None else None
        self.filter_expr = filter_expr

    def output_schema(self) -> Schema:
        if self.projection is None:
            return self.schema
        return Schema([self.schema.field(n) for n in self.projection])

    def chunks(self, ctx: ExecutionContext):
        host = ctx.catalog.get(self.table_name)
        if host is None:
            raise UnsupportedFeatureError(f"table {self.table_name!r} not in catalog")
        gtable = ctx.buffer_manager.get_table(self.table_name, host)
        if self.projection is not None:
            gtable = gtable.select(self.projection)
        batch = ctx.batch_rows
        total = gtable.num_rows
        if batch is None or total <= batch:
            yield self._filtered(ctx, gtable)
            return
        for start in range(0, total, batch):
            chunk = slice_table(gtable, start, min(batch, total - start))
            yield self._filtered(ctx, chunk)

    def _filtered(self, ctx: ExecutionContext, chunk: GTable) -> GTable:
        if self.filter_expr is None:
            return chunk
        with ctx.device.clock.attributed(Category.FILTER):
            keep = expr_eval.evaluate_predicate(self.filter_expr, chunk)
            return mask_table(chunk, keep)

    def describe(self) -> str:
        extra = ", filter" if self.filter_expr is not None else ""
        return f"TableScan({self.table_name}{extra})"


class IntermediateSource(SourceOperator):
    """Source reading a materialised intermediate produced by another
    pipeline (the output of a pipeline breaker)."""

    category = Category.OTHER

    def __init__(self, slot: str, schema: Schema):
        self.slot = slot
        self.schema = schema

    def output_schema(self) -> Schema:
        return self.schema

    def chunks(self, ctx: ExecutionContext):
        raise RuntimeError("IntermediateSource chunks are supplied by the executor")

    def describe(self) -> str:
        return f"Intermediate({self.slot})"
