"""Physical operators of the Sirius execution engine."""

from .aggregate import GlobalAggSink, GroupBySink
from .base import (
    Category,
    ExecutionContext,
    OperatorRegistry,
    PhysicalOperator,
    SinkOperator,
    SourceOperator,
    StreamingOperator,
    UnsupportedFeatureError,
)
from .join import HashJoinBuildSink, HashJoinProbe, custom_sort_merge_join, libcudf_join
from .scan import IntermediateSource, TableScan
from .sort import FetchSink, MaterializeSink, SortSink, TopNSink
from .streaming import FilterOp, ProjectOp

__all__ = [
    "Category",
    "ExecutionContext",
    "FetchSink",
    "FilterOp",
    "GlobalAggSink",
    "GroupBySink",
    "HashJoinBuildSink",
    "HashJoinProbe",
    "IntermediateSource",
    "MaterializeSink",
    "OperatorRegistry",
    "PhysicalOperator",
    "ProjectOp",
    "SinkOperator",
    "SortSink",
    "SourceOperator",
    "StreamingOperator",
    "TableScan",
    "TopNSink",
    "UnsupportedFeatureError",
    "custom_sort_merge_join",
    "libcudf_join",
]
