"""Hash-join operators: a build-side sink and a streaming probe.

The join is split across pipelines, following the pipeline model: the
build side runs first as its own pipeline (terminating in
:class:`HashJoinBuildSink`), and the probe side streams through
:class:`HashJoinProbe` referencing the materialised build slot.

Two implementations are registered (§3.2.2's libcudf/custom switch):

* ``"libcudf"`` — the kernel library's hash join;
* ``"custom"``  — a sort-merge join "custom kernel" with a different cost
  profile (two sort passes + a streaming merge instead of random-access
  hashing); results are identical.

Row indices crossing the engine/kernel boundary pay the paper's
uint64 <-> int32 conversion through the buffer manager.
"""

from __future__ import annotations

import numpy as np

from ...columnar import Schema
from ...gpu.costmodel import KernelClass
from ...kernels import GTable, anti_join, gather_table, inner_join, left_join, mask_table, semi_join
from ...kernels.join import JoinResult, _expand, _match_ranges
from ...kernels.keys import factorize_keys
from .. import expr_eval
from .base import Category, ExecutionContext, SinkOperator, StreamingOperator

__all__ = ["HashJoinBuildSink", "HashJoinProbe", "libcudf_join", "custom_sort_merge_join"]


def libcudf_join(join_type: str, probe_keys, build_keys):
    """The default implementation: kernel-library hash join.

    Returns a :class:`JoinResult` for inner/left, or an index array for
    semi/anti (probe-side survivors).
    """
    if join_type == "inner":
        return inner_join(probe_keys, build_keys)
    if join_type == "left":
        return left_join(probe_keys, build_keys)
    if join_type == "semi":
        return semi_join(probe_keys, build_keys)
    if join_type == "anti":
        return anti_join(probe_keys, build_keys)
    raise ValueError(f"unknown join type {join_type!r}")


def custom_sort_merge_join(join_type: str, probe_keys, build_keys):
    """Alternative "custom kernel": sort-merge join.

    Same output as the hash join; cost charged as two SORT kernels plus a
    streaming merge, which trades the hash join's random-access discount
    for log-factor passes.
    """
    device = probe_keys[0].device
    pcodes, bcodes, _ = factorize_keys(probe_keys, build_keys, nulls_match=False)
    probe_bytes = sum(k.traffic_bytes for k in probe_keys)
    build_bytes = sum(k.traffic_bytes for k in build_keys)
    device.launch(KernelClass.SORT, probe_bytes, len(pcodes) * 4, len(pcodes))
    device.launch(KernelClass.SORT, build_bytes, len(bcodes) * 4, len(bcodes))
    order, lo, hi = _match_ranges(bcodes, pcodes)
    if join_type in ("semi", "anti"):
        matched = hi > lo
        out = np.flatnonzero(matched if join_type == "semi" else ~matched).astype(np.int32)
        device.launch(KernelClass.STREAM, probe_bytes + build_bytes, out.nbytes, len(pcodes))
        return out
    probe_idx, build_idx, counts = _expand(order, lo, hi)
    if join_type == "left":
        unmatched = np.flatnonzero(counts == 0)
        probe_idx = np.concatenate([probe_idx, unmatched])
        build_idx = np.concatenate([build_idx, np.full(len(unmatched), -1, dtype=np.int64)])
    device.launch(
        KernelClass.STREAM, probe_bytes + build_bytes, len(probe_idx) * 8, len(pcodes)
    )
    return JoinResult(probe_idx, build_idx)


class HashJoinBuildSink(SinkOperator):
    """Materialises the build (right) side of a join into a slot."""

    category = Category.JOIN

    def __init__(self, slot: str, schema: Schema):
        self.slot = slot
        self.schema = schema

    def output_schema(self) -> Schema:
        return self.schema

    def consume(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> None:
        state.setdefault("chunks", []).append(chunk)

    def finalize(self, ctx: ExecutionContext, state: dict) -> GTable:
        from ...kernels import concat_gtables

        chunks = state.get("chunks", [])
        if not chunks:
            return _empty_gtable(ctx, self.schema)
        if len(chunks) == 1:
            return chunks[0]
        return concat_gtables(chunks)

    def describe(self) -> str:
        return f"HashJoinBuild({self.slot})"


class HashJoinProbe(StreamingOperator):
    """Streams probe chunks against a materialised build table."""

    category = Category.JOIN

    def __init__(
        self,
        build_slot: str,
        join_type: str,
        probe_key_indices,
        build_key_indices,
        probe_schema: Schema,
        build_schema: Schema,
        post_filter=None,
    ):
        self.build_slot = build_slot
        self.join_type = join_type
        self.probe_key_indices = list(probe_key_indices)
        self.build_key_indices = list(build_key_indices)
        self.probe_schema = probe_schema
        self.build_schema = build_schema
        self.post_filter = post_filter

    def output_schema(self) -> Schema:
        if self.join_type in ("semi", "anti"):
            return self.probe_schema
        from ...plan.relations import join_output_schema

        return join_output_schema(self.probe_schema, self.build_schema)

    def process(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> GTable:
        build_table: GTable = state["slots"][self.build_slot]
        if not self.probe_key_indices:
            return self._cross_join(ctx, chunk, build_table)
        probe_keys = [chunk.columns[i] for i in self.probe_key_indices]
        build_keys = [build_table.columns[i] for i in self.build_key_indices]
        impl = ctx.registry.get("join")
        result = impl(self.join_type, probe_keys, build_keys)

        bm = ctx.buffer_manager
        if self.join_type in ("semi", "anti"):
            if self.post_filter is not None:
                return self._filtered_semi_anti(ctx, chunk, build_table, probe_keys, build_keys)
            engine_ids = bm.kernel_indices_to_engine(result)
            kernel_ids = bm.engine_indices_to_kernel(engine_ids)
            out = gather_table(chunk, kernel_ids)
            return out
        else:
            # Round-trip the gather maps through engine uint64 ids — the
            # one non-zero-copy conversion the paper calls out (§3.2.3).
            left_ids = bm.engine_indices_to_kernel(
                bm.kernel_indices_to_engine(result.left_indices)
            )
            right_ids = bm.engine_indices_to_kernel(
                bm.kernel_indices_to_engine(result.right_indices)
            )
            left_out = gather_table(chunk, left_ids)
            right_out = gather_table(build_table, right_ids)
            out = GTable(
                self.output_schema(),
                list(left_out.columns) + list(right_out.columns),
                chunk.device,
            )
        if self.post_filter is not None:
            # Residual predicates are *filtering* work (Q13's NOT LIKE on
            # o_comment lives here); attribute them as Figure 5 does.
            with ctx.device.clock.attributed(Category.FILTER):
                keep = expr_eval.evaluate_predicate(self.post_filter, out)
                out = mask_table(out, keep)
        return out

    def _cross_join(self, ctx: ExecutionContext, chunk: GTable, build_table: GTable) -> GTable:
        """Key-less join: full cartesian product.

        Produced by the planner only for single-row scalar-subquery joins,
        but implemented generally.
        """
        if self.join_type != "inner":
            raise ValueError("cross join supports inner join type only")
        n, m = chunk.num_rows, build_table.num_rows
        left_idx = np.repeat(np.arange(n, dtype=np.int32), m)
        right_idx = np.tile(np.arange(m, dtype=np.int32), n)
        ctx.device.launch(KernelClass.STREAM, chunk.nbytes + build_table.nbytes, n * m * 8, n * m)
        left_out = gather_table(chunk, left_idx)
        right_out = gather_table(build_table, right_idx)
        out = GTable(
            self.output_schema(), list(left_out.columns) + list(right_out.columns), chunk.device
        )
        if self.post_filter is not None:
            keep = expr_eval.evaluate_predicate(self.post_filter, out)
            out = mask_table(out, keep)
        return out

    def _filtered_semi_anti(self, ctx, chunk, build_table, probe_keys, build_keys) -> GTable:
        """Semi/anti join with a residual non-equi predicate (Q21's
        ``l2.l_suppkey <> l1.l_suppkey`` pattern): run the inner join,
        filter the pairs, then reduce back to distinct probe rows."""
        pairs = inner_join(probe_keys, build_keys)
        left_out = gather_table(chunk, pairs.left_indices)
        right_out = gather_table(build_table, pairs.right_indices)
        from ...plan.relations import join_output_schema

        combined = GTable(
            join_output_schema(self.probe_schema, self.build_schema),
            list(left_out.columns) + list(right_out.columns),
            chunk.device,
        )
        with ctx.device.clock.attributed(Category.FILTER):
            keep = expr_eval.evaluate_predicate(self.post_filter, combined)
        matched_probe = np.unique(pairs.left_indices[keep])
        ctx.device.launch(KernelClass.STREAM, pairs.left_indices.nbytes, matched_probe.nbytes, len(pairs))
        if self.join_type == "semi":
            survivors = matched_probe.astype(np.int32)
        else:
            all_rows = np.arange(chunk.num_rows, dtype=np.int64)
            survivors = np.setdiff1d(all_rows, matched_probe).astype(np.int32)
        return gather_table(chunk, survivors)

    def describe(self) -> str:
        return f"HashJoinProbe({self.join_type}, slot={self.build_slot})"


def _empty_gtable(ctx: ExecutionContext, schema: Schema) -> GTable:
    from ...columnar import Table
    from ...kernels import GTable as GT

    host = Table.empty(schema)
    return GT.from_host(ctx.device, host)
