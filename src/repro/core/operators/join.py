"""Hash-join operators: a build-side sink and a streaming probe.

The join is split across pipelines, following the pipeline model: the
build side runs first as its own pipeline (terminating in
:class:`HashJoinBuildSink`), and the probe side streams through
:class:`HashJoinProbe` referencing the materialised build slot.

Two implementations are registered (§3.2.2's libcudf/custom switch):

* ``"libcudf"`` — the kernel library's hash join;
* ``"custom"``  — a sort-merge join "custom kernel" with a different cost
  profile (two sort passes + a streaming merge instead of random-access
  hashing); results are identical.

Row indices crossing the engine/kernel boundary pay the paper's
uint64 <-> int32 conversion through the buffer manager.
"""

from __future__ import annotations

import numpy as np

from ...columnar import Schema
from ...gpu.costmodel import KernelClass
from ...kernels import GTable, anti_join, gather_table, inner_join, left_join, mask_table, semi_join
from ...kernels.join import JoinResult, _expand, _match_ranges
from ...kernels.keys import factorize_keys
from .. import expr_eval
from .base import (
    Category,
    ChunkStream,
    ExecutionContext,
    SinkOperator,
    StreamingOperator,
    dispose_consumed,
)

__all__ = [
    "HashJoinBuildSink",
    "HashJoinProbe",
    "PartitionedBuild",
    "PartitionedHashJoinBuildSink",
    "PartitionedHashJoinProbe",
    "libcudf_join",
    "custom_sort_merge_join",
]


def libcudf_join(join_type: str, probe_keys, build_keys):
    """The default implementation: kernel-library hash join.

    Returns a :class:`JoinResult` for inner/left, or an index array for
    semi/anti (probe-side survivors).
    """
    if join_type == "inner":
        return inner_join(probe_keys, build_keys)
    if join_type == "left":
        return left_join(probe_keys, build_keys)
    if join_type == "semi":
        return semi_join(probe_keys, build_keys)
    if join_type == "anti":
        return anti_join(probe_keys, build_keys)
    raise ValueError(f"unknown join type {join_type!r}")


def custom_sort_merge_join(join_type: str, probe_keys, build_keys):
    """Alternative "custom kernel": sort-merge join.

    Same output as the hash join; cost charged as two SORT kernels plus a
    streaming merge, which trades the hash join's random-access discount
    for log-factor passes.
    """
    device = probe_keys[0].device
    pcodes, bcodes, _ = factorize_keys(probe_keys, build_keys, nulls_match=False)
    probe_bytes = sum(k.traffic_bytes for k in probe_keys)
    build_bytes = sum(k.traffic_bytes for k in build_keys)
    device.launch(KernelClass.SORT, probe_bytes, len(pcodes) * 4, len(pcodes))
    device.launch(KernelClass.SORT, build_bytes, len(bcodes) * 4, len(bcodes))
    order, lo, hi = _match_ranges(bcodes, pcodes)
    if join_type in ("semi", "anti"):
        matched = hi > lo
        out = np.flatnonzero(matched if join_type == "semi" else ~matched).astype(np.int32)
        device.launch(KernelClass.STREAM, probe_bytes + build_bytes, out.nbytes, len(pcodes))
        return out
    probe_idx, build_idx, counts = _expand(order, lo, hi)
    if join_type == "left":
        unmatched = np.flatnonzero(counts == 0)
        probe_idx = np.concatenate([probe_idx, unmatched])
        build_idx = np.concatenate([build_idx, np.full(len(unmatched), -1, dtype=np.int64)])
    device.launch(
        KernelClass.STREAM, probe_bytes + build_bytes, len(probe_idx) * 8, len(pcodes)
    )
    return JoinResult(probe_idx, build_idx)


class HashJoinBuildSink(SinkOperator):
    """Materialises the build (right) side of a join into a slot."""

    category = Category.JOIN

    def __init__(self, slot: str, schema: Schema):
        self.slot = slot
        self.schema = schema

    def output_schema(self) -> Schema:
        return self.schema

    def consume(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> None:
        state.setdefault("chunks", []).append(chunk)

    def finalize(self, ctx: ExecutionContext, state: dict) -> GTable:
        from ...kernels import concat_gtables

        chunks = state.get("chunks", [])
        if not chunks:
            return _empty_gtable(ctx, self.schema)
        if len(chunks) == 1:
            return chunks[0]
        return concat_gtables(chunks)

    def describe(self) -> str:
        return f"HashJoinBuild({self.slot})"


class HashJoinProbe(StreamingOperator):
    """Streams probe chunks against a materialised build table."""

    category = Category.JOIN

    def __init__(
        self,
        build_slot: str,
        join_type: str,
        probe_key_indices,
        build_key_indices,
        probe_schema: Schema,
        build_schema: Schema,
        post_filter=None,
    ):
        self.build_slot = build_slot
        self.join_type = join_type
        self.probe_key_indices = list(probe_key_indices)
        self.build_key_indices = list(build_key_indices)
        self.probe_schema = probe_schema
        self.build_schema = build_schema
        self.post_filter = post_filter

    def output_schema(self) -> Schema:
        if self.join_type in ("semi", "anti"):
            return self.probe_schema
        from ...plan.relations import join_output_schema

        return join_output_schema(self.probe_schema, self.build_schema)

    def process(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> GTable:
        build_table: GTable = state["slots"][self.build_slot]
        return self._probe_against(ctx, chunk, build_table)

    def _probe_against(self, ctx: ExecutionContext, chunk: GTable, build_table: GTable) -> GTable:
        """Probe one chunk against one materialised build table (the whole
        build in-core; one partition of it out-of-core)."""
        if not self.probe_key_indices:
            return self._cross_join(ctx, chunk, build_table)
        probe_keys = [chunk.columns[i] for i in self.probe_key_indices]
        build_keys = [build_table.columns[i] for i in self.build_key_indices]
        impl = ctx.registry.get("join")
        result = impl(self.join_type, probe_keys, build_keys)

        bm = ctx.buffer_manager
        if self.join_type in ("semi", "anti"):
            if self.post_filter is not None:
                return self._filtered_semi_anti(ctx, chunk, build_table, probe_keys, build_keys)
            engine_ids = bm.kernel_indices_to_engine(result)
            kernel_ids = bm.engine_indices_to_kernel(engine_ids)
            out = gather_table(chunk, kernel_ids)
            return out
        else:
            # Round-trip the gather maps through engine uint64 ids — the
            # one non-zero-copy conversion the paper calls out (§3.2.3).
            left_ids = bm.engine_indices_to_kernel(
                bm.kernel_indices_to_engine(result.left_indices)
            )
            right_ids = bm.engine_indices_to_kernel(
                bm.kernel_indices_to_engine(result.right_indices)
            )
            left_out = gather_table(chunk, left_ids)
            right_out = gather_table(build_table, right_ids)
            out = GTable(
                self.output_schema(),
                list(left_out.columns) + list(right_out.columns),
                chunk.device,
            )
        if self.post_filter is not None:
            # Residual predicates are *filtering* work (Q13's NOT LIKE on
            # o_comment lives here); attribute them as Figure 5 does.
            with ctx.device.clock.attributed(Category.FILTER):
                keep = expr_eval.evaluate_predicate(self.post_filter, out)
                out = mask_table(out, keep)
        return out

    def _cross_join(self, ctx: ExecutionContext, chunk: GTable, build_table: GTable) -> GTable:
        """Key-less join: full cartesian product.

        Produced by the planner only for single-row scalar-subquery joins,
        but implemented generally.
        """
        if self.join_type != "inner":
            raise ValueError("cross join supports inner join type only")
        n, m = chunk.num_rows, build_table.num_rows
        left_idx = np.repeat(np.arange(n, dtype=np.int32), m)
        right_idx = np.tile(np.arange(m, dtype=np.int32), n)
        ctx.device.launch(KernelClass.STREAM, chunk.nbytes + build_table.nbytes, n * m * 8, n * m)
        left_out = gather_table(chunk, left_idx)
        right_out = gather_table(build_table, right_idx)
        out = GTable(
            self.output_schema(), list(left_out.columns) + list(right_out.columns), chunk.device
        )
        if self.post_filter is not None:
            keep = expr_eval.evaluate_predicate(self.post_filter, out)
            out = mask_table(out, keep)
        return out

    def _filtered_semi_anti(self, ctx, chunk, build_table, probe_keys, build_keys) -> GTable:
        """Semi/anti join with a residual non-equi predicate (Q21's
        ``l2.l_suppkey <> l1.l_suppkey`` pattern): run the inner join,
        filter the pairs, then reduce back to distinct probe rows."""
        pairs = inner_join(probe_keys, build_keys)
        left_out = gather_table(chunk, pairs.left_indices)
        right_out = gather_table(build_table, pairs.right_indices)
        from ...plan.relations import join_output_schema

        combined = GTable(
            join_output_schema(self.probe_schema, self.build_schema),
            list(left_out.columns) + list(right_out.columns),
            chunk.device,
        )
        with ctx.device.clock.attributed(Category.FILTER):
            keep = expr_eval.evaluate_predicate(self.post_filter, combined)
        matched_probe = np.unique(pairs.left_indices[keep])
        ctx.device.launch(KernelClass.STREAM, pairs.left_indices.nbytes, matched_probe.nbytes, len(pairs))
        if self.join_type == "semi":
            survivors = matched_probe.astype(np.int32)
        else:
            all_rows = np.arange(chunk.num_rows, dtype=np.int64)
            survivors = np.setdiff1d(all_rows, matched_probe).astype(np.int32)
        return gather_table(chunk, survivors)

    def describe(self) -> str:
        return f"HashJoinProbe({self.join_type}, slot={self.build_slot})"


class PartitionedBuild:
    """Handle for an out-of-core build side, stored in the build slot.

    The build rows live as radix partitions registered with the buffer
    manager's fragment store (device / pinned host / disk, wherever
    pressure pushed them) rather than as one resident :class:`GTable`.
    ``leaves`` maps a partition path — a tuple of radix digits, one per
    recursion level — to the fragment name holding that partition.  A
    path is absent when the build side had no rows for it.
    """

    def __init__(self, schema: Schema, key_indices: list[int], fanout: int):
        self.schema = schema
        self.key_indices = key_indices
        self.fanout = fanout
        self.leaves: dict[tuple[int, ...], str] = {}
        self.num_rows = 0
        self.nbytes = 0
        self._prefixes: set[tuple[int, ...]] = set()

    def add_leaf(self, path: tuple[int, ...], name: str, rows: int, nbytes: int) -> None:
        self.leaves[path] = name
        self.num_rows += rows
        self.nbytes += nbytes
        for i in range(len(path)):
            self._prefixes.add(path[:i])

    def has_descendants(self, path: tuple[int, ...]) -> bool:
        """Whether any leaf lives strictly below ``path`` (meaning the
        probe side must subdivide further to find its match partition)."""
        return path in self._prefixes

    def depth(self) -> int:
        return max((len(p) for p in self.leaves), default=0)

    def __repr__(self) -> str:
        return (
            f"PartitionedBuild(rows={self.num_rows}, leaves={len(self.leaves)}, "
            f"depth={self.depth()})"
        )


class PartitionedHashJoinBuildSink(HashJoinBuildSink):
    """Out-of-core build sink: radix-partitions the build side into
    buffer-manager fragments instead of materialising one table.

    Each incoming chunk is split by a level-0 radix hash of the join keys
    and the pieces are registered as spillable fragments; under memory
    pressure the buffer manager migrates them device → pinned host → disk
    on the copy stream.  ``finalize`` re-merges each partition and
    recursively re-splits (salted hash per level, so a skewed bucket
    re-shuffles) any partition still larger than ``partition_budget_bytes``
    until it fits or ``max_depth`` is reached.  The slot receives a
    :class:`PartitionedBuild` handle; the paired
    :class:`PartitionedHashJoinProbe` routes probe rows through the same
    hashes, so every key pair meets in exactly one leaf and the join is
    exact.
    """

    consumes_by_copy = True  # partitions are scattered copies; the chunk may be freed

    def __init__(
        self,
        slot: str,
        schema: Schema,
        key_indices,
        num_partitions: int = 8,
        partition_budget_bytes: int | None = None,
        max_depth: int = 3,
    ):
        super().__init__(slot, schema)
        self.key_indices = list(key_indices)
        if num_partitions < 2:
            raise ValueError("partitioned build needs num_partitions >= 2")
        self.num_partitions = num_partitions
        self.partition_budget_bytes = partition_budget_bytes
        self.max_depth = max_depth

    def consume(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> None:
        from ...kernels import partition_join_side

        parts = partition_join_side(chunk, self.key_indices, self.num_partitions, level=0)
        dispose_consumed(ctx, chunk, state)  # partitions are copies; drop the input now
        bm = ctx.buffer_manager
        by_part = state.setdefault("part_chunks", {p: [] for p in range(self.num_partitions)})
        seq = state.setdefault("frag_seq", 0)
        ns = state.get("frag_ns", "q0")
        for p, part in enumerate(parts):
            if part is None:
                continue
            name = f"{ns}/{self.slot}/c{seq}.{p}"
            seq += 1
            bm.put_fragment(name, part)
            by_part[p].append(name)
        state["frag_seq"] = seq

    def finalize(self, ctx: ExecutionContext, state: dict):
        by_part = state.get("part_chunks")
        if not by_part or all(not names for names in by_part.values()):
            # Degenerate empty build: hand the probe a plain empty GTable
            # (the probe falls back to the in-core path for it).
            return _empty_gtable(ctx, self.schema)
        bm = ctx.buffer_manager
        budget = self.partition_budget_bytes
        if budget is None:
            budget = max(ctx.device.processing_pool.capacity // 4, 1)
        build = PartitionedBuild(self.schema, self.key_indices, self.num_partitions)
        ns = state.get("frag_ns", "q0")
        for p in sorted(by_part):
            names = by_part[p]
            if not names:
                continue
            merged = self._merge_fragments(ctx, bm, names)
            self._store(ctx, bm, build, (p,), merged, budget, 1, ns)
        return build

    def _merge_fragments(self, ctx: ExecutionContext, bm, names: list[str]) -> GTable:
        """Unspill and concatenate one partition's chunk fragments,
        retiring the per-chunk fragments afterwards."""
        from ...kernels import concat_gtables

        tables = [bm.get_fragment(n) for n in names]
        merged = concat_gtables(tables)
        for n in names:
            bm.drop_fragment(n)
        return merged

    def _store(self, ctx, bm, build, path, table: GTable, budget: int, level: int, ns: str) -> None:
        """Register ``table`` as the leaf at ``path``, or re-split it at
        the next radix level when it exceeds the partition budget."""
        from ...kernels import partition_join_side

        if level <= self.max_depth and table.nbytes > budget and table.num_rows > 1:
            parts = partition_join_side(table, self.key_indices, self.num_partitions, level=level)
            table.free()
            for q, sub in enumerate(parts):
                if sub is not None:
                    self._store(ctx, bm, build, path + (q,), sub, budget, level + 1, ns)
            return
        name = f"{ns}/{self.slot}/" + ".".join(str(d) for d in path)
        bm.put_fragment(name, table)
        build.add_leaf(path, name, table.num_rows, table.nbytes)

    def describe(self) -> str:
        return f"PartitionedHashJoinBuild({self.slot}, fanout={self.num_partitions})"


class PartitionedHashJoinProbe(HashJoinProbe):
    """Probe variant for :class:`PartitionedBuild` slots.

    Each probe chunk is routed through the same salted radix hashes the
    build used, so probe rows of leaf ``path`` meet exactly the build rows
    of leaf ``path``; leaves are unspilled one at a time via the buffer
    manager (LRU — hot leaves stay resident, cold ones come back from
    pinned host or disk).  Probe rows whose build partition is empty
    short-circuit: dropped for inner/semi, probed against an empty table
    for left/anti so unmatched-row semantics hold.

    Per-leaf join outputs are *streamed* downstream as a
    :class:`~.base.ChunkStream` rather than concatenated: the executor
    pushes each leaf output through the rest of the pipeline before the
    next leaf is probed, so the probe never holds its full output
    resident — that residency is exactly what would put a lower bound of
    ``output_size`` on the memory floor.
    """

    def process(self, ctx: ExecutionContext, chunk: GTable, state: dict):
        build = state["slots"][self.build_slot]
        if not isinstance(build, PartitionedBuild):
            # Empty-build degenerate case (or a non-partitioned rerun):
            # the slot holds a plain GTable; probe it in-core.
            return self._probe_against(ctx, chunk, build)
        return ChunkStream(self._stream_leaf_outputs(ctx, chunk, build, state))

    def _stream_leaf_outputs(self, ctx, chunk: GTable, build, state: dict):
        """Partition the input, free it, then lazily yield join outputs
        (the executor interleaves downstream work between pulls).

        Consecutive per-leaf outputs are coalesced up to ~1/8 of the
        processing pool before being emitted: unbounded accumulation would
        re-materialise the whole probe output (the memory floor this class
        exists to remove), while emitting every leaf individually multiplies
        downstream kernel launches by the leaf count and drowns the query
        in launch latency.
        """
        from ...kernels import concat_gtables, partition_join_side

        budget = max(ctx.device.processing_pool.capacity // 8, 1 << 20)
        pending: list[GTable] = []
        pending_bytes = 0

        def flush():
            if len(pending) == 1:
                out = pending[0]
            else:
                out = concat_gtables(pending)
                for t in pending:
                    t.free()
            pending.clear()
            return out

        parts = partition_join_side(chunk, self.probe_key_indices, build.fanout, level=0)
        dispose_consumed(ctx, chunk, state)  # sub-partitions are copies; drop the input
        for q, sub in enumerate(parts):
            if sub is None:
                continue
            for out in self._probe_stream(ctx, sub, build, (q,), 1):
                pending.append(out)
                pending_bytes += out.nbytes
                if pending_bytes >= budget:
                    pending_bytes = 0
                    yield flush()
            sub.free()
        if pending:
            yield flush()

    def _probe_stream(self, ctx, chunk: GTable, build, path, level: int):
        """Probe the rows of ``chunk`` (already routed to ``path``) against
        the build leaves under ``path``, recursing level by level."""
        from ...kernels import partition_join_side

        if path in build.leaves:
            build_table = ctx.buffer_manager.get_fragment(build.leaves[path])
            yield from self._emit(ctx, chunk, build_table)
            return
        if not build.has_descendants(path):
            # No build rows hash here.  Inner/semi probe rows can never
            # match; left/anti still owe output for unmatched rows.
            if self.join_type in ("left", "anti"):
                empty = _empty_gtable(ctx, self.build_schema)
                yield from self._emit(ctx, chunk, empty)
                empty.free()
            return
        parts = partition_join_side(chunk, self.probe_key_indices, build.fanout, level=level)
        for q, sub in enumerate(parts):
            if sub is None:
                continue
            yield from self._probe_stream(ctx, sub, build, path + (q,), level + 1)
            sub.free()

    def _emit(self, ctx, chunk: GTable, build_table: GTable):
        out = self._probe_against(ctx, chunk, build_table)
        if out is None:
            return
        if out.num_rows > 0:
            yield out
        else:
            out.free()

    def describe(self) -> str:
        return f"PartitionedHashJoinProbe({self.join_type}, slot={self.build_slot})"


def _empty_gtable(ctx: ExecutionContext, schema: Schema) -> GTable:
    from ...columnar import Table
    from ...kernels import GTable as GT

    host = Table.empty(schema)
    return GT.from_host(ctx.device, host)
