"""The fused streaming operator: one kernel for a run of filters/projects.

The paper's premise is that GPU analytical engines are bound by data
movement, not arithmetic — every operator boundary in the unfused path
materialises a full intermediate ``GTable`` to HBM that the next operator
immediately reads back.  :class:`FusedOp` collapses a maximal run of
adjacent :class:`~.streaming.FilterOp`/:class:`~.streaming.ProjectOp`
stages (plus hoisted join residual filters — see the planner's fusion
pass) into a single region that reads its input chunk once and writes
only the final result: all interior traffic is recorded but priced at
zero by :meth:`Device.fused_kernel`, and the whole run bills a single
kernel launch.

Expressions are compiled once at plan time (here, in ``__init__`` — the
RR04 lint requires operators to be stateless after construction) into
vectorized closures via :mod:`repro.core.expr_compile`; the closures call
the exact same kernels as the interpreter, so fused results are
bit-identical to the unfused pipeline.

Filter stages compact survivors eagerly (``mask_table``), which is the
short-circuit mask propagation: every later stage only touches rows that
survived every earlier predicate.  The CSE cache is keyed by expression
digest and valid for one table epoch — each stage produces a new chunk
object (compaction or projection), so the cache resets at every stage
boundary and sharing happens *within* a stage (across a projection's
expression list, or across a predicate tree's repeated subtrees).
"""

from __future__ import annotations

from ...columnar import Schema
from ...kernels import GTable, mask_table
from ..expr_compile import compile_predicate, compile_projection
from .base import Category, ExecutionContext, StreamingOperator
from .streaming import FilterOp, ProjectOp

__all__ = ["FusedOp"]


class FusedOp(StreamingOperator):
    """A compiled run of Filter/Project stages executed as one kernel."""

    def __init__(self, stages):
        stages = list(stages)
        if not stages:
            raise ValueError("FusedOp needs at least one stage")
        program = []
        for stage in stages:
            if isinstance(stage, FilterOp):
                program.append(("filter", compile_predicate(stage.condition)))
            elif isinstance(stage, ProjectOp):
                schema = stage.output_schema()
                projections = [
                    compile_projection(expr, dtype=field.dtype)
                    for expr, field in zip(stage.expressions, schema.fields)
                ]
                program.append(("project", (projections, schema)))
            else:
                raise TypeError(f"cannot fuse {type(stage).__name__}")
        self.stages = stages
        self._program = program
        # Attribute the fused region's time the way Figure 5 would: a run
        # containing any filtering work counts as filter time.
        self.category = (
            Category.FILTER
            if any(isinstance(s, FilterOp) for s in stages)
            else Category.OTHER
        )

    def output_schema(self) -> Schema:
        return self.stages[-1].output_schema()

    def process(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> GTable:
        device = ctx.device
        bytes_in = chunk.traffic_bytes
        with device.fused_kernel() as scope:
            table = chunk
            for kind, payload in self._program:
                # Fresh CSE cache per stage: compaction/projection changes
                # the row space, invalidating cached positional columns.
                cache: dict = {}
                if kind == "filter":
                    keep = payload(table, cache)
                    table = mask_table(table, keep)
                else:
                    projections, schema = payload
                    columns = [p(table, cache) for p in projections]
                    table = GTable(schema, columns, table.device)
            scope.external(bytes_in, table.traffic_bytes)
        return table

    def describe(self) -> str:
        inner = " -> ".join(s.describe() for s in self.stages)
        return f"Fused[{inner}]"
