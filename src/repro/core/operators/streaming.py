"""Streaming (non-breaking) operators: filter and project."""

from __future__ import annotations

from ...columnar import Schema
from ...kernels import GTable, mask_table
from .. import expr_eval
from .base import Category, ExecutionContext, StreamingOperator

__all__ = ["FilterOp", "ProjectOp"]


class FilterOp(StreamingOperator):
    """Row selection: evaluate the predicate, compact survivors."""

    category = Category.FILTER

    def __init__(self, condition, input_schema: Schema):
        self.condition = condition
        self.input_schema = input_schema

    def output_schema(self) -> Schema:
        return self.input_schema

    def process(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> GTable:
        keep = expr_eval.evaluate_predicate(self.condition, chunk)
        return mask_table(chunk, keep)

    def describe(self) -> str:
        return f"Filter({self.condition!r})"


class ProjectOp(StreamingOperator):
    """Compute named expressions over a chunk."""

    category = Category.OTHER

    def __init__(self, expressions, names, output_schema: Schema):
        self.expressions = list(expressions)
        self.names = list(names)
        self._schema = output_schema

    def output_schema(self) -> Schema:
        return self._schema

    def process(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> GTable:
        columns = [
            expr_eval.evaluate_to_column(e, chunk, dtype=field.dtype)
            for e, field in zip(self.expressions, self._schema.fields)
        ]
        return GTable(self._schema, columns, chunk.device)

    def describe(self) -> str:
        return f"Project({self.names})"
