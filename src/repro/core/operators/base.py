"""Physical operator base classes and the execution context.

Sirius uses a **push-based** model inside each pipeline (§3.2.2): the
executor owns all state and pushes data into *stateless* operators.  An
operator is therefore a small object holding only its parameters; any
mutable execution state (hash tables, accumulated chunks) lives in the
executor's pipeline state, keyed by slot ids.

Each operator declares a ``category`` — the bucket its simulated time is
attributed to.  These categories are exactly the Figure 5 legend: join,
group-by, filter, aggregation, order-by, other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ...columnar import Schema, Table
from ...gpu.device import Device
from ...kernels import GTable
from ...obs import NULL_TRACER
from ..buffer_manager import BufferManager

__all__ = [
    "Category",
    "ExecutionContext",
    "PhysicalOperator",
    "StreamingOperator",
    "SinkOperator",
    "SourceOperator",
    "UnsupportedFeatureError",
    "ChunkStream",
    "dispose_consumed",
]


class ChunkStream:
    """Lazy sequence of output chunks from a one-to-many streaming operator.

    A :class:`StreamingOperator` may return one of these instead of a
    single ``GTable`` (e.g. a partitioned probe emitting per-leaf join
    outputs).  The executor drains it chunk by chunk, pushing each chunk
    through the remaining operators and the sink *before* pulling the
    next, so at most one emitted chunk is resident at a time — this is
    what keeps out-of-core probe pipelines from materialising their whole
    output.  The operator's generator owns disposal of its input chunk.
    """

    __slots__ = ("chunks",)

    def __init__(self, chunks):
        self.chunks = chunks


def dispose_consumed(ctx: "ExecutionContext", chunk: GTable, state: dict) -> None:
    """Free a chunk's buffers once an out-of-core operator has copied
    everything it needs out of it (partitioned sinks and probes scatter
    the chunk into fresh per-partition tables, after which the original
    is dead weight the per-query pool reset would otherwise hold until
    query end).

    Columns shared with cached base tables, live spill fragments, or
    materialised pipeline slots are skipped; ``DeviceBuffer.free`` is
    idempotent, so the executor's own disposal pass stays safe if it
    later revisits the same chunk.
    """
    protected = {id(c) for c in ctx.buffer_manager.protected_columns()}
    for table in state.get("slots", {}).values():
        if isinstance(table, GTable):
            protected.update(id(c) for c in table.columns)
    for col in chunk.columns:
        if id(col) not in protected:
            col.free()


class Category:
    """Time-attribution buckets (the paper's Figure 5 legend)."""

    JOIN = "join"
    GROUPBY = "groupby"
    FILTER = "filter"
    AGGREGATION = "aggregation"
    ORDERBY = "orderby"
    OTHER = "other"

    ALL = (JOIN, GROUPBY, FILTER, AGGREGATION, ORDERBY, OTHER)


class UnsupportedFeatureError(NotImplementedError):
    """Raised when a plan needs something the GPU engine does not support;
    the Sirius API catches it and falls back to the host engine (§3.2.2)."""


@dataclass
class ExecutionContext:
    """Everything operators need at runtime.

    Attributes:
        device: The execution device (GPU for Sirius, CPU for baselines
            reusing this executor).
        buffer_manager: Caching region + format conversion.
        catalog: Host tables by name (the host database's storage).
        registry: Operator-implementation registry (libcudf vs custom).
        exchange: Exchange service for distributed runs; ``None`` single-node
            (the paper: "in single-node deployments, this layer can be
            bypassed entirely").
        batch_rows: If set, sources push data in batches of this many rows
            (the out-of-core/pipelined execution extension of §3.4).
        node_id: This node's rank in a distributed run.
        tracer: Observability sink for spans/metrics; the no-op
            :data:`~repro.obs.NULL_TRACER` by default, so fault-free
            untraced execution is byte-identical.
    """

    device: Device
    buffer_manager: BufferManager
    catalog: Mapping[str, Table]
    registry: "OperatorRegistry"
    exchange: object | None = None
    batch_rows: int | None = None
    node_id: int = 0
    tracer: object = NULL_TRACER


class PhysicalOperator:
    """Base physical operator; parameters only, no execution state."""

    category: str = Category.OTHER

    def output_schema(self) -> Schema:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return self.describe()


class SourceOperator(PhysicalOperator):
    """Produces input chunks for a pipeline."""

    def chunks(self, ctx: ExecutionContext):
        """Yield GTable chunks."""
        raise NotImplementedError


class StreamingOperator(PhysicalOperator):
    """Transforms one chunk into another without cross-chunk state."""

    def process(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> GTable | None:
        """Transform a chunk; may return ``None`` to drop it entirely."""
        raise NotImplementedError


class SinkOperator(PhysicalOperator):
    """Pipeline terminator: consumes all chunks, then finalises."""

    # True when ``consume`` copies everything it keeps (partitioned/
    # spilling sinks): the out-of-core executor may then free the chunk's
    # buffers right after consumption.  Default False — most sinks retain
    # the chunk object itself until ``finalize``.
    consumes_by_copy = False

    def consume(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> None:
        raise NotImplementedError

    def finalize(self, ctx: ExecutionContext, state: dict) -> GTable | None:
        """Produce the sink's materialised output (None for pure effects)."""
        raise NotImplementedError


class OperatorRegistry:
    """Switchable operator implementations (§3.2.2's modular design).

    Sirius lets developers swap an operator's implementation between GPU
    libraries (libcudf) and custom CUDA kernels; this registry models that:
    implementations are registered under ``(op_kind, impl_name)`` and the
    active implementation per kind is selectable at runtime.
    """

    def __init__(self):
        self._impls: dict[tuple[str, str], object] = {}
        self._active: dict[str, str] = {}

    def register(self, op_kind: str, impl_name: str, impl: object, make_active: bool = False):
        self._impls[(op_kind, impl_name)] = impl
        if make_active or op_kind not in self._active:
            self._active[op_kind] = impl_name

    def use(self, op_kind: str, impl_name: str) -> None:
        if (op_kind, impl_name) not in self._impls:
            raise KeyError(f"no implementation {impl_name!r} registered for {op_kind!r}")
        self._active[op_kind] = impl_name

    def get(self, op_kind: str):
        name = self._active.get(op_kind)
        if name is None:
            raise KeyError(f"no implementation registered for {op_kind!r}")
        return self._impls[(op_kind, name)]

    def active_implementations(self) -> dict[str, str]:
        return dict(self._active)

    def available(self, op_kind: str) -> list[str]:
        return [impl for kind, impl in self._impls if kind == op_kind]
