"""Order-by sinks: full sort, fused top-N, and fetch (offset/limit)."""

from __future__ import annotations

from ...columnar import Schema, Table
from ...kernels import GTable, concat_gtables, gather_table, slice_table, sorted_order, top_n_order
from .base import Category, ExecutionContext, SinkOperator

__all__ = ["SortSink", "TopNSink", "FetchSink", "MaterializeSink"]


class _CollectingSink(SinkOperator):
    """Shared chunk-accumulation behaviour for order-by style breakers."""

    def __init__(self, input_schema: Schema):
        self.input_schema = input_schema

    def output_schema(self) -> Schema:
        return self.input_schema

    def consume(self, ctx: ExecutionContext, chunk: GTable, state: dict) -> None:
        state.setdefault("chunks", []).append(chunk)

    def _collect(self, ctx: ExecutionContext, state: dict) -> GTable:
        chunks = state.get("chunks", [])
        if not chunks:
            return GTable.from_host(ctx.device, Table.empty(self.input_schema))
        return chunks[0] if len(chunks) == 1 else concat_gtables(chunks)


class SortSink(_CollectingSink):
    """Full ORDER BY."""

    category = Category.ORDERBY

    def __init__(self, sort_keys, input_schema: Schema):
        super().__init__(input_schema)
        self.sort_keys = list(sort_keys)  # [(ordinal, ascending)]

    def finalize(self, ctx: ExecutionContext, state: dict) -> GTable:
        data = self._collect(ctx, state)
        if data.num_rows == 0:
            return data
        keys = [data.columns[i] for i, _ in self.sort_keys]
        ascending = [a for _, a in self.sort_keys]
        order = sorted_order(keys, ascending)
        return gather_table(data, order)

    def describe(self) -> str:
        return f"Sort({self.sort_keys})"


class TopNSink(_CollectingSink):
    """ORDER BY + LIMIT fused into a top-N selection (cheaper than a full
    sort; the planner produces this when a FetchRel sits on a SortRel)."""

    category = Category.ORDERBY

    def __init__(self, sort_keys, limit: int, offset: int, input_schema: Schema):
        super().__init__(input_schema)
        self.sort_keys = list(sort_keys)
        self.limit = int(limit)
        self.offset = int(offset)

    def finalize(self, ctx: ExecutionContext, state: dict) -> GTable:
        data = self._collect(ctx, state)
        if data.num_rows == 0:
            return data
        keys = [data.columns[i] for i, _ in self.sort_keys]
        ascending = [a for _, a in self.sort_keys]
        order = top_n_order(keys, ascending, self.offset + self.limit)
        return gather_table(data, order[self.offset :])

    def describe(self) -> str:
        return f"TopN({self.sort_keys}, limit={self.limit})"


class FetchSink(_CollectingSink):
    """Bare OFFSET/LIMIT without ordering."""

    category = Category.OTHER

    def __init__(self, offset: int, count, input_schema: Schema):
        super().__init__(input_schema)
        self.offset = int(offset)
        self.count = count

    def finalize(self, ctx: ExecutionContext, state: dict) -> GTable:
        data = self._collect(ctx, state)
        count = data.num_rows if self.count is None else self.count
        return slice_table(data, self.offset, count)

    def describe(self) -> str:
        return f"Fetch(offset={self.offset}, count={self.count})"


class MaterializeSink(_CollectingSink):
    """Generic breaker output: concatenates chunks into one table (used for
    intermediate slots and as the final result collector)."""

    category = Category.OTHER

    def finalize(self, ctx: ExecutionContext, state: dict) -> GTable:
        return self._collect(ctx, state)

    def describe(self) -> str:
        return "Materialize"
