"""The top-level plan container: versioning, JSON round-trip, validation.

A :class:`Plan` is what a host database hands Sirius — the equivalent of a
serialized Substrait plan.  ``validate`` performs the structural checks a
consumer needs before executing third-party plans: ordinal bounds, boolean
filter conditions, join-key type compatibility, and exchange placement.
"""

from __future__ import annotations

import json

from ..columnar import BOOL, Schema
from .expressions import AggregateCall, Expression, FieldRef, infer_type
from .relations import (
    AggregateRel,
    ExchangeRel,
    FetchRel,
    FilterRel,
    JoinRel,
    ProjectRel,
    ReadRel,
    Relation,
    SortRel,
    rel_from_dict,
)

__all__ = ["Plan", "PlanValidationError", "validate_relation", "walk_relations", "walk_expressions"]

PLAN_VERSION = "repro-substrait-1"


class PlanValidationError(ValueError):
    """A structural problem in a plan tree."""


class Plan:
    """A versioned, serialisable query plan."""

    def __init__(self, root: Relation, version: str = PLAN_VERSION):
        self.root = root
        self.version = version

    def output_schema(self) -> Schema:
        return self.root.output_schema()

    def to_dict(self) -> dict:
        return {"version": self.version, "root": self.root.to_dict()}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "Plan":
        """Deserialize a plan payload.

        Third-party payloads are untrusted: malformed shapes surface as
        :class:`PlanValidationError` (never ``KeyError``), so consumers
        can gate on one exception type.
        """
        if not isinstance(data, dict):
            raise PlanValidationError(
                f"plan payload must be an object, got {type(data).__name__}"
            )
        if "version" not in data:
            raise PlanValidationError("plan payload is missing its 'version' field")
        if data["version"] != PLAN_VERSION:
            raise PlanValidationError(
                f"unsupported plan version {data['version']!r} "
                f"(expected {PLAN_VERSION!r})"
            )
        if "root" not in data:
            raise PlanValidationError("plan payload is missing its 'root' relation")
        try:
            root = rel_from_dict(data["root"])
        except PlanValidationError:
            raise
        except (KeyError, ValueError, TypeError) as exc:
            raise PlanValidationError(f"malformed plan payload: {exc}") from exc
        return cls(root, data["version"])

    @classmethod
    def from_json(cls, text: str) -> "Plan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanValidationError(f"plan payload is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def validate(self) -> None:
        validate_relation(self.root)

    def explain(self) -> str:
        """Human-readable indented plan tree."""
        lines: list[str] = []

        def visit(rel: Relation, depth: int) -> None:
            lines.append("  " * depth + repr(rel))
            for child in rel.inputs:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Plan({self.root!r})"


def walk_relations(rel: Relation):
    """Yield every relation in the tree, parents before children."""
    yield rel
    for child in rel.inputs:
        yield from walk_relations(child)


def walk_expressions(expr: Expression):
    """Yield every expression node in a tree, parents first."""
    yield expr
    for child in expr.children():
        yield from walk_expressions(child)


def _check_expr(expr: Expression, schema: Schema, where: str) -> None:
    for node in walk_expressions(expr):
        if isinstance(node, FieldRef) and node.index >= len(schema):
            raise PlanValidationError(
                f"{where}: field ${node.index} out of range (input arity {len(schema)})"
            )
    # Trigger full type inference, surfacing type errors.
    try:
        infer_type(expr, schema)
    except (TypeError, KeyError, IndexError) as exc:
        raise PlanValidationError(f"{where}: {exc}") from exc


def validate_relation(rel: Relation) -> None:
    """Recursively validate a relation tree (raises on the first problem)."""
    for child in rel.inputs:
        validate_relation(child)

    if isinstance(rel, ReadRel):
        if rel.filter_expr is not None:
            schema = rel.output_schema()
            _check_expr(rel.filter_expr, schema, f"read({rel.table_name}).filter")
            if infer_type(rel.filter_expr, schema) is not BOOL:
                raise PlanValidationError(f"read({rel.table_name}): pushed filter is not boolean")
    elif isinstance(rel, FilterRel):
        schema = rel.input_rel.output_schema()
        _check_expr(rel.condition, schema, "filter")
        if infer_type(rel.condition, schema) is not BOOL:
            raise PlanValidationError("filter condition is not boolean")
    elif isinstance(rel, ProjectRel):
        schema = rel.input_rel.output_schema()
        if len(set(rel.names)) != len(rel.names):
            raise PlanValidationError(f"project emits duplicate names: {rel.names}")
        for expr in rel.expressions:
            _check_expr(expr, schema, "project")
    elif isinstance(rel, JoinRel):
        left_schema = rel.left.output_schema()
        right_schema = rel.right.output_schema()
        if not rel.left_keys and rel.join_type != "inner":
            raise PlanValidationError("key-less (cross) joins must be inner joins")
        for lk, rk in zip(rel.left_keys, rel.right_keys):
            if lk >= len(left_schema) or rk >= len(right_schema):
                raise PlanValidationError(f"join key ordinal out of range: {lk}={rk}")
            lt = left_schema.fields[lk].dtype
            rt = right_schema.fields[rk].dtype
            compatible = lt is rt or (lt.is_numeric and rt.is_numeric)
            if not compatible:
                raise PlanValidationError(f"join key type mismatch: {lt} vs {rt}")
        if rel.post_filter is not None:
            # Post-filters see the combined schema even for semi/anti joins
            # (residual correlated predicates reference both sides).
            from .relations import join_output_schema

            combined = join_output_schema(left_schema, right_schema)
            _check_expr(rel.post_filter, combined, "join.post_filter")
    elif isinstance(rel, AggregateRel):
        schema = rel.input_rel.output_schema()
        for g in rel.group_indices:
            if g >= len(schema):
                raise PlanValidationError(f"group ordinal ${g} out of range")
        for agg, name in rel.measures:
            if not isinstance(agg, AggregateCall):
                raise PlanValidationError(f"measure {name} is not an aggregate call")
            if agg.arg is not None:
                _check_expr(agg.arg, schema, f"aggregate measure {name}")
            _check_expr(agg, schema, f"aggregate measure {name}")
        out_names = rel.output_schema().names()
        if len(set(out_names)) != len(out_names):
            raise PlanValidationError(f"aggregate emits duplicate names: {out_names}")
    elif isinstance(rel, SortRel):
        schema = rel.input_rel.output_schema()
        for idx, _ in rel.sort_keys:
            if idx >= len(schema):
                raise PlanValidationError(f"sort ordinal ${idx} out of range")
    elif isinstance(rel, FetchRel):
        if rel.offset < 0 or (rel.count is not None and rel.count < 0):
            raise PlanValidationError("fetch offset/count must be non-negative")
    elif isinstance(rel, ExchangeRel):
        schema = rel.input_rel.output_schema()
        for idx in rel.keys:
            if idx >= len(schema):
                raise PlanValidationError(f"exchange key ordinal ${idx} out of range")
