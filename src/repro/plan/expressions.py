"""Expression trees for the Substrait-style plan IR.

Like Substrait, expressions reference input columns by *ordinal*
(:class:`FieldRef`), carry embedded literals, and invoke functions by
name.  The function namespace is flat and closed (see ``SCALAR_FUNCTIONS``)
— the engine's expression evaluator maps each name onto a kernel.

Every node serialises to/from plain dicts so plans can round-trip through
JSON, which is how the host databases hand plans to Sirius.
"""

from __future__ import annotations

import datetime
from typing import Any, Sequence

from ..columnar import BOOL, DATE32, FLOAT64, INT64, STRING, DType, Schema
from ..columnar.dtypes import common_numeric_type, dtype_from_name

__all__ = [
    "Expression",
    "FieldRef",
    "Literal",
    "ScalarCall",
    "AggregateCall",
    "SCALAR_FUNCTIONS",
    "AGGREGATE_FUNCTIONS",
    "infer_type",
    "expr_from_dict",
]

# Scalar function names understood by the engines.
SCALAR_FUNCTIONS = frozenset(
    {
        "add", "subtract", "multiply", "divide", "modulo", "negate",
        "eq", "ne", "lt", "le", "gt", "ge",
        "and", "or", "not",
        "is_null", "is_not_null",
        "like", "not_like", "contains", "starts_with", "substring",
        "upper", "lower", "length", "concat",
        "abs", "round",
        "in", "not_in", "between",
        "case", "coalesce", "cast",
        "extract_year", "extract_month", "extract_day",
    }
)

AGGREGATE_FUNCTIONS = frozenset({"sum", "min", "max", "count", "count_star", "avg", "count_distinct"})

_COMPARISONS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
_PREDICATES = frozenset(
    {"and", "or", "not", "is_null", "is_not_null", "like", "not_like",
     "contains", "starts_with", "in", "not_in", "between"}
)


class Expression:
    """Base class for all expression nodes."""

    def to_dict(self) -> dict:
        raise NotImplementedError

    def children(self) -> Sequence["Expression"]:
        return ()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(repr(self))


class FieldRef(Expression):
    """Reference to the input relation's column at ``index``."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        if index < 0:
            raise ValueError("field index must be non-negative")
        self.index = int(index)

    def to_dict(self) -> dict:
        return {"kind": "field", "index": self.index}

    def __repr__(self) -> str:
        return f"${self.index}"


class Literal(Expression):
    """An embedded constant.  Dates are carried as :class:`datetime.date`."""

    __slots__ = ("value", "dtype")

    def __init__(self, value: Any, dtype: DType | None = None):
        self.value = value
        self.dtype = dtype if dtype is not None else _literal_dtype(value)

    def to_dict(self) -> dict:
        value = self.value
        if isinstance(value, datetime.date):
            value = value.isoformat()
        return {"kind": "literal", "value": value, "dtype": self.dtype.name if self.dtype else None}

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class ScalarCall(Expression):
    """A scalar function invocation.

    ``options`` carries non-expression arguments (cast target type,
    substring offsets, LIKE patterns live as Literal args instead).
    """

    __slots__ = ("func", "args", "options")

    def __init__(self, func: str, args: Sequence[Expression], options: dict | None = None):
        if func not in SCALAR_FUNCTIONS:
            raise ValueError(f"unknown scalar function {func!r}")
        self.func = func
        self.args = list(args)
        self.options = dict(options or {})

    def children(self) -> Sequence[Expression]:
        return self.args

    def to_dict(self) -> dict:
        out = {"kind": "call", "func": self.func, "args": [a.to_dict() for a in self.args]}
        if self.options:
            out["options"] = dict(self.options)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.func}({inner})"


class AggregateCall(Expression):
    """An aggregate invocation appearing in an AggregateRel measure."""

    __slots__ = ("op", "arg", "distinct")

    def __init__(self, op: str, arg: Expression | None, distinct: bool = False):
        if op not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate {op!r}")
        if arg is None and op != "count_star":
            raise ValueError(f"aggregate {op} requires an argument")
        self.op = op
        self.arg = arg
        self.distinct = bool(distinct)

    def children(self) -> Sequence[Expression]:
        return () if self.arg is None else (self.arg,)

    def to_dict(self) -> dict:
        return {
            "kind": "agg",
            "op": self.op,
            "arg": None if self.arg is None else self.arg.to_dict(),
            "distinct": self.distinct,
        }

    def __repr__(self) -> str:
        inner = "*" if self.arg is None else repr(self.arg)
        prefix = "distinct " if self.distinct else ""
        return f"{self.op}({prefix}{inner})"


def _literal_dtype(value: Any) -> DType:
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT64
    if isinstance(value, float):
        return FLOAT64
    if isinstance(value, str):
        return STRING
    if isinstance(value, datetime.date):
        return DATE32
    if value is None:
        return INT64  # typed NULL defaults; callers may override
    raise TypeError(f"unsupported literal {value!r}")


def infer_type(expr: Expression, schema: Schema) -> DType:
    """Derive the result type of ``expr`` against an input ``schema``."""
    if isinstance(expr, FieldRef):
        if expr.index >= len(schema):
            raise IndexError(f"field {expr.index} out of range for schema of {len(schema)}")
        return schema.fields[expr.index].dtype
    if isinstance(expr, Literal):
        return expr.dtype
    if isinstance(expr, AggregateCall):
        return aggregate_result_type(expr, schema)
    if isinstance(expr, ScalarCall):
        return _call_type(expr, schema)
    raise TypeError(f"cannot infer type of {expr!r}")


def aggregate_result_type(agg: AggregateCall, schema: Schema) -> DType:
    if agg.op in ("count", "count_star", "count_distinct"):
        return INT64
    arg_type = infer_type(agg.arg, schema)
    if agg.op in ("sum", "avg") and not arg_type.is_numeric:
        raise TypeError(f"{agg.op} requires a numeric argument, got {arg_type.name}")
    if agg.op == "avg":
        return FLOAT64
    if agg.op == "sum":
        return INT64 if arg_type.is_integer else FLOAT64
    return arg_type  # min / max


def _call_type(call: ScalarCall, schema: Schema) -> DType:
    f = call.func
    if f in _COMPARISONS or f in _PREDICATES:
        return BOOL
    if f == "divide":
        return FLOAT64
    if f in ("add", "subtract", "multiply", "modulo"):
        left = infer_type(call.args[0], schema)
        right = infer_type(call.args[1], schema)
        if left is DATE32 and right.is_integer and f in ("add", "subtract"):
            return DATE32
        if left is DATE32 and right is DATE32 and f == "subtract":
            return INT64
        return common_numeric_type(left, right)
    if f == "negate":
        return infer_type(call.args[0], schema)
    if f == "cast":
        return dtype_from_name(call.options["to"])
    if f == "substring":
        return STRING
    if f in ("upper", "lower", "concat"):
        for arg in call.args:
            t = infer_type(arg, schema)
            if not t.is_string and not _is_null_literal(arg):
                raise TypeError(f"{f} requires string arguments, got {t.name}")
        return STRING
    if f == "length":
        t = infer_type(call.args[0], schema)
        if not t.is_string and not _is_null_literal(call.args[0]):
            raise TypeError(f"length requires a string argument, got {t.name}")
        return INT64
    if f == "abs":
        t = infer_type(call.args[0], schema)
        if not t.is_numeric:
            raise TypeError(f"abs requires a numeric argument, got {t.name}")
        return t
    if f == "round":
        t = infer_type(call.args[0], schema)
        if not t.is_numeric:
            raise TypeError(f"round requires a numeric argument, got {t.name}")
        return FLOAT64
    if f in ("extract_year", "extract_month", "extract_day"):
        return INT64
    if f == "case":
        # args = [cond1, res1, cond2, res2, ..., default].  NULL-literal
        # branches defer typing to the first typed branch.
        for i in list(range(1, len(call.args), 2)) + [len(call.args) - 1]:
            if not _is_null_literal(call.args[i]):
                return infer_type(call.args[i], schema)
        return infer_type(call.args[-1], schema)
    if f == "coalesce":
        for arg in call.args:
            if not _is_null_literal(arg):
                return infer_type(arg, schema)
        return infer_type(call.args[0], schema)
    raise TypeError(f"cannot type scalar call {f!r}")


def _is_null_literal(expr: Expression) -> bool:
    return isinstance(expr, Literal) and expr.value is None


def expr_from_dict(data: dict) -> Expression:
    """Deserialize an expression previously produced by ``to_dict``."""
    kind = data["kind"]
    if kind == "field":
        return FieldRef(data["index"])
    if kind == "literal":
        dtype = dtype_from_name(data["dtype"]) if data.get("dtype") else None
        value = data["value"]
        if dtype is DATE32 and isinstance(value, str):
            value = datetime.date.fromisoformat(value)
        return Literal(value, dtype)
    if kind == "call":
        args = [expr_from_dict(a) for a in data["args"]]
        return ScalarCall(data["func"], args, data.get("options"))
    if kind == "agg":
        arg = expr_from_dict(data["arg"]) if data.get("arg") else None
        return AggregateCall(data["op"], arg, data.get("distinct", False))
    raise ValueError(f"unknown expression kind {kind!r}")
