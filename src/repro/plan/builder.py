"""A fluent, name-based builder over the ordinal plan IR.

The raw IR references columns by ordinal (Substrait style); this builder
lets tests, examples, and the SQL planner compose plans by column *name*:

    plan = (PlanBuilder.read("lineitem", schema)
        .filter(col("l_shipdate") <= date(1998, 9, 2))
        .aggregate(groups=["l_returnflag"], aggs=[("sum", "l_quantity", "sum_qty")])
        .sort([("l_returnflag", True)])
        .build())

Expression helpers: :func:`col` produces a deferred name reference that is
resolved against the input schema when the enclosing relation is added.
"""

from __future__ import annotations

import datetime
from typing import Any, Sequence

from ..columnar import Schema
from .expressions import AggregateCall, Expression, FieldRef, Literal, ScalarCall
from .plan import Plan
from .relations import (
    AggregateRel,
    ExchangeRel,
    FetchRel,
    FilterRel,
    JoinRel,
    ProjectRel,
    ReadRel,
    Relation,
    SortRel,
)

__all__ = ["col", "lit", "NamedExpr", "PlanBuilder"]


class NamedExpr:
    """A deferred expression over column *names*, resolved at build time."""

    def __init__(self, kind: str, payload: Any, children: Sequence["NamedExpr"] = (), options=None):
        self.kind = kind  # "col" | "lit" | "call"
        self.payload = payload
        self.children = list(children)
        self.options = dict(options or {})

    # -- operator sugar -----------------------------------------------------

    def _bin(self, func: str, other: Any) -> "NamedExpr":
        return NamedExpr("call", func, [self, _wrap(other)])

    def __add__(self, other):
        return self._bin("add", other)

    def __sub__(self, other):
        return self._bin("subtract", other)

    def __mul__(self, other):
        return self._bin("multiply", other)

    def __truediv__(self, other):
        return self._bin("divide", other)

    def __eq__(self, other):  # type: ignore[override]
        return self._bin("eq", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._bin("ne", other)

    def __lt__(self, other):
        return self._bin("lt", other)

    def __le__(self, other):
        return self._bin("le", other)

    def __gt__(self, other):
        return self._bin("gt", other)

    def __ge__(self, other):
        return self._bin("ge", other)

    def __and__(self, other):
        return self._bin("and", other)

    def __or__(self, other):
        return self._bin("or", other)

    def __invert__(self):
        return NamedExpr("call", "not", [self])

    def like(self, pattern: str) -> "NamedExpr":
        return self._bin("like", pattern)

    def isin(self, values: Sequence[Any]) -> "NamedExpr":
        return NamedExpr("call", "in", [self] + [_wrap(v) for v in values])

    def between(self, low: Any, high: Any) -> "NamedExpr":
        return NamedExpr("call", "between", [self, _wrap(low), _wrap(high)])

    def extract(self, part: str) -> "NamedExpr":
        return NamedExpr("call", f"extract_{part}", [self])

    def is_null(self) -> "NamedExpr":
        return NamedExpr("call", "is_null", [self])

    def resolve(self, schema: Schema) -> Expression:
        """Lower to the ordinal IR against ``schema``."""
        if self.kind == "col":
            return FieldRef(schema.index_of(self.payload))
        if self.kind == "lit":
            return Literal(self.payload)
        args = [c.resolve(schema) for c in self.children]
        return ScalarCall(self.payload, args, self.options or None)

    def __hash__(self):
        return id(self)


def col(name: str) -> NamedExpr:
    """Reference a column by name."""
    return NamedExpr("col", name)


def lit(value: Any) -> NamedExpr:
    """Embed a literal (int/float/str/bool/date)."""
    return NamedExpr("lit", value)


def _wrap(value: Any) -> NamedExpr:
    if isinstance(value, NamedExpr):
        return value
    if isinstance(value, (int, float, str, bool, datetime.date)):
        return lit(value)
    raise TypeError(f"cannot use {value!r} in an expression")


class PlanBuilder:
    """Accumulates relations; every method returns a new builder."""

    def __init__(self, rel: Relation):
        self._rel = rel

    @classmethod
    def read(
        cls,
        table_name: str,
        schema: Schema,
        projection: Sequence[str] | None = None,
    ) -> "PlanBuilder":
        return cls(ReadRel(table_name, schema, projection))

    @property
    def relation(self) -> Relation:
        return self._rel

    def schema(self) -> Schema:
        return self._rel.output_schema()

    def filter(self, condition: NamedExpr) -> "PlanBuilder":
        resolved = condition.resolve(self.schema())
        return PlanBuilder(FilterRel(self._rel, resolved))

    def project(self, items: Sequence[tuple[NamedExpr | str, str]]) -> "PlanBuilder":
        """Project ``(expression_or_column_name, output_name)`` pairs."""
        schema = self.schema()
        exprs = []
        names = []
        for item, name in items:
            expr = col(item) if isinstance(item, str) else item
            exprs.append(expr.resolve(schema))
            names.append(name)
        return PlanBuilder(ProjectRel(self._rel, exprs, names))

    def select(self, names: Sequence[str]) -> "PlanBuilder":
        return self.project([(n, n) for n in names])

    def join(
        self,
        other: "PlanBuilder",
        join_type: str,
        on: Sequence[tuple[str, str]],
        post_filter: NamedExpr | None = None,
    ) -> "PlanBuilder":
        """Join with ``on`` = [(left_col, right_col), ...] name pairs."""
        left_schema = self.schema()
        right_schema = other.schema()
        left_keys = [left_schema.index_of(name) for name, _ in on]
        right_keys = [right_schema.index_of(r) for _, r in on]
        rel = JoinRel(self._rel, other._rel, join_type, left_keys, right_keys)
        if post_filter is not None:
            joined_schema = rel.output_schema()
            rel = JoinRel(
                self._rel, other._rel, join_type, left_keys, right_keys,
                post_filter.resolve(joined_schema),
            )
        return PlanBuilder(rel)

    def aggregate(
        self,
        groups: Sequence[str],
        aggs: Sequence[tuple[str, NamedExpr | str | None, str]],
    ) -> "PlanBuilder":
        """Aggregate: ``aggs`` = [(op, input_expr_or_name_or_None, out_name)].

        Non-trivial aggregate inputs are materialised through an implicit
        projection first (the IR's AggregateRel aggregates field refs and
        simple expressions alike, but projecting keeps plans uniform).
        """
        schema = self.schema()
        group_indices = [schema.index_of(g) for g in groups]
        measures = []
        for op, arg, name in aggs:
            distinct = False
            if op.endswith("_distinct") and op != "count_distinct":
                raise ValueError(f"unknown aggregate {op}")
            if op == "count_distinct":
                op, distinct = "count", True
            if arg is None:
                call = AggregateCall("count_star" if op == "count" else op, None)
            else:
                arg_expr = col(arg) if isinstance(arg, str) else arg
                resolved = arg_expr.resolve(schema)
                base_op = "count_distinct" if (op == "count" and distinct) else op
                call = AggregateCall(base_op, resolved, distinct)
            measures.append((call, name))
        return PlanBuilder(AggregateRel(self._rel, group_indices, measures))

    def sort(self, keys: Sequence[tuple[str, bool]]) -> "PlanBuilder":
        schema = self.schema()
        resolved = [(schema.index_of(n), asc) for n, asc in keys]
        return PlanBuilder(SortRel(self._rel, resolved))

    def limit(self, count: int, offset: int = 0) -> "PlanBuilder":
        return PlanBuilder(FetchRel(self._rel, offset, count))

    def exchange(self, kind: str, keys: Sequence[str] = ()) -> "PlanBuilder":
        schema = self.schema()
        return PlanBuilder(ExchangeRel(self._rel, kind, [schema.index_of(k) for k in keys]))

    def build(self) -> Plan:
        plan = Plan(self._rel)
        plan.validate()
        return plan
