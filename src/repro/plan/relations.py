"""Relational operators of the Substrait-style plan IR.

Each relation derives its own output schema, serialises to a dict, and can
be rebuilt with new inputs (``with_inputs``) so optimizer rules can rewrite
trees without mutation.

Join output schema follows Substrait: left fields then right fields (for
semi/anti joins, left fields only).  Aggregate output schema is the group
key fields followed by one field per measure.
"""

from __future__ import annotations

from typing import Sequence

from ..columnar import Field, Schema
from .expressions import (
    AggregateCall,
    Expression,
    aggregate_result_type,
    expr_from_dict,
    infer_type,
)

__all__ = [
    "Relation",
    "ReadRel",
    "FilterRel",
    "ProjectRel",
    "JoinRel",
    "AggregateRel",
    "SortRel",
    "FetchRel",
    "ExchangeRel",
    "JOIN_TYPES",
    "EXCHANGE_KINDS",
    "rel_from_dict",
]

JOIN_TYPES = ("inner", "left", "semi", "anti")
EXCHANGE_KINDS = ("broadcast", "shuffle", "merge", "multicast")


def join_output_schema(left: Schema, right: Schema) -> Schema:
    """Concatenate join input schemas, disambiguating duplicate names.

    Substrait addresses join outputs by ordinal, so duplicate names are
    legal there; our named schemas rename right-side collisions
    deterministically (``k`` -> ``k#1``) — exactly what engines like DuckDB
    surface for ambiguous join outputs.
    """
    fields: list[Field] = []
    seen: set[str] = set()
    for f in list(left.fields) + list(right.fields):
        name = f.name
        suffix = 1
        while name in seen:
            name = f"{f.name}#{suffix}"
            suffix += 1
        seen.add(name)
        fields.append(Field(name, f.dtype))
    return Schema(fields)


class Relation:
    """Base class for plan relations."""

    inputs: tuple["Relation", ...] = ()

    def output_schema(self) -> Schema:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError

    def with_inputs(self, inputs: Sequence["Relation"]) -> "Relation":
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Relation) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return id(self)


class ReadRel(Relation):
    """A named-table scan with optional column projection and pushed filter."""

    def __init__(
        self,
        table_name: str,
        base_schema: Schema,
        projection: Sequence[str] | None = None,
        filter_expr: Expression | None = None,
    ):
        self.table_name = table_name
        self.base_schema = base_schema
        self.projection = list(projection) if projection is not None else None
        self.filter_expr = filter_expr
        if self.projection is not None:
            for name in self.projection:
                if name not in base_schema:
                    raise KeyError(f"projected column {name!r} not in {table_name}")

    def output_schema(self) -> Schema:
        if self.projection is None:
            return self.base_schema
        return Schema([self.base_schema.field(n) for n in self.projection])

    def to_dict(self) -> dict:
        return {
            "rel": "read",
            "table": self.table_name,
            "base_schema": [(f.name, f.dtype.name) for f in self.base_schema],
            "projection": self.projection,
            "filter": self.filter_expr.to_dict() if self.filter_expr else None,
        }

    def with_inputs(self, inputs: Sequence[Relation]) -> "ReadRel":
        if inputs:
            raise ValueError("ReadRel takes no inputs")
        return self

    def __repr__(self) -> str:
        return f"Read({self.table_name})"


class FilterRel(Relation):
    """Row selection by a boolean condition."""

    def __init__(self, input_rel: Relation, condition: Expression):
        self.inputs = (input_rel,)
        self.condition = condition

    @property
    def input_rel(self) -> Relation:
        return self.inputs[0]

    def output_schema(self) -> Schema:
        return self.input_rel.output_schema()

    def to_dict(self) -> dict:
        return {
            "rel": "filter",
            "input": self.input_rel.to_dict(),
            "condition": self.condition.to_dict(),
        }

    def with_inputs(self, inputs: Sequence[Relation]) -> "FilterRel":
        (inp,) = inputs
        return FilterRel(inp, self.condition)

    def __repr__(self) -> str:
        return f"Filter({self.condition!r})"


class ProjectRel(Relation):
    """Compute named expressions over the input."""

    def __init__(self, input_rel: Relation, expressions: Sequence[Expression], names: Sequence[str]):
        if len(expressions) != len(names):
            raise ValueError("one name per projected expression required")
        self.inputs = (input_rel,)
        self.expressions = list(expressions)
        self.names = list(names)

    @property
    def input_rel(self) -> Relation:
        return self.inputs[0]

    def output_schema(self) -> Schema:
        in_schema = self.input_rel.output_schema()
        return Schema(
            [Field(n, infer_type(e, in_schema)) for n, e in zip(self.names, self.expressions)]
        )

    def to_dict(self) -> dict:
        return {
            "rel": "project",
            "input": self.input_rel.to_dict(),
            "expressions": [e.to_dict() for e in self.expressions],
            "names": list(self.names),
        }

    def with_inputs(self, inputs: Sequence[Relation]) -> "ProjectRel":
        (inp,) = inputs
        return ProjectRel(inp, self.expressions, self.names)

    def __repr__(self) -> str:
        return f"Project({self.names})"


class JoinRel(Relation):
    """Equi-join with optional residual filter over the joined schema."""

    def __init__(
        self,
        left: Relation,
        right: Relation,
        join_type: str,
        left_keys: Sequence[int],
        right_keys: Sequence[int],
        post_filter: Expression | None = None,
    ):
        if join_type not in JOIN_TYPES:
            raise ValueError(f"unknown join type {join_type!r}")
        if len(left_keys) != len(right_keys):
            raise ValueError("join needs equal numbers of keys on both sides")
        self.inputs = (left, right)
        self.join_type = join_type
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.post_filter = post_filter

    @property
    def left(self) -> Relation:
        return self.inputs[0]

    @property
    def right(self) -> Relation:
        return self.inputs[1]

    def output_schema(self) -> Schema:
        left_schema = self.left.output_schema()
        if self.join_type in ("semi", "anti"):
            return left_schema
        return join_output_schema(left_schema, self.right.output_schema())

    def to_dict(self) -> dict:
        return {
            "rel": "join",
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
            "type": self.join_type,
            "left_keys": list(self.left_keys),
            "right_keys": list(self.right_keys),
            "post_filter": self.post_filter.to_dict() if self.post_filter else None,
        }

    def with_inputs(self, inputs: Sequence[Relation]) -> "JoinRel":
        left, right = inputs
        return JoinRel(left, right, self.join_type, self.left_keys, self.right_keys, self.post_filter)

    def __repr__(self) -> str:
        return f"Join({self.join_type}, {self.left_keys}={self.right_keys})"


class AggregateRel(Relation):
    """Grouped (or global, when ``group_indices`` is empty) aggregation."""

    def __init__(
        self,
        input_rel: Relation,
        group_indices: Sequence[int],
        measures: Sequence[tuple[AggregateCall, str]],
    ):
        self.inputs = (input_rel,)
        self.group_indices = list(group_indices)
        self.measures = list(measures)

    @property
    def input_rel(self) -> Relation:
        return self.inputs[0]

    def output_schema(self) -> Schema:
        in_schema = self.input_rel.output_schema()
        fields = [in_schema.fields[i] for i in self.group_indices]
        for agg, name in self.measures:
            fields.append(Field(name, aggregate_result_type(agg, in_schema)))
        return Schema(fields)

    def to_dict(self) -> dict:
        return {
            "rel": "aggregate",
            "input": self.input_rel.to_dict(),
            "groups": list(self.group_indices),
            "measures": [{"agg": a.to_dict(), "name": n} for a, n in self.measures],
        }

    def with_inputs(self, inputs: Sequence[Relation]) -> "AggregateRel":
        (inp,) = inputs
        return AggregateRel(inp, self.group_indices, self.measures)

    def __repr__(self) -> str:
        return f"Aggregate(groups={self.group_indices}, measures={[n for _, n in self.measures]})"


class SortRel(Relation):
    """Total ordering by (field index, ascending) sort keys."""

    def __init__(self, input_rel: Relation, sort_keys: Sequence[tuple[int, bool]]):
        if not sort_keys:
            raise ValueError("SortRel needs at least one key")
        self.inputs = (input_rel,)
        self.sort_keys = [(int(i), bool(a)) for i, a in sort_keys]

    @property
    def input_rel(self) -> Relation:
        return self.inputs[0]

    def output_schema(self) -> Schema:
        return self.input_rel.output_schema()

    def to_dict(self) -> dict:
        return {
            "rel": "sort",
            "input": self.input_rel.to_dict(),
            "keys": [[i, a] for i, a in self.sort_keys],
        }

    def with_inputs(self, inputs: Sequence[Relation]) -> "SortRel":
        (inp,) = inputs
        return SortRel(inp, self.sort_keys)

    def __repr__(self) -> str:
        return f"Sort({self.sort_keys})"


class FetchRel(Relation):
    """OFFSET/LIMIT."""

    def __init__(self, input_rel: Relation, offset: int, count: int | None):
        self.inputs = (input_rel,)
        self.offset = int(offset)
        self.count = None if count is None else int(count)

    @property
    def input_rel(self) -> Relation:
        return self.inputs[0]

    def output_schema(self) -> Schema:
        return self.input_rel.output_schema()

    def to_dict(self) -> dict:
        return {
            "rel": "fetch",
            "input": self.input_rel.to_dict(),
            "offset": self.offset,
            "count": self.count,
        }

    def with_inputs(self, inputs: Sequence[Relation]) -> "FetchRel":
        (inp,) = inputs
        return FetchRel(inp, self.offset, self.count)

    def __repr__(self) -> str:
        return f"Fetch(offset={self.offset}, count={self.count})"


class ExchangeRel(Relation):
    """Data redistribution boundary in a distributed plan.

    ``kind`` is one of broadcast / shuffle / merge / multicast — the four
    patterns Sirius' exchange service layer implements on NCCL.  ``keys``
    are the hash-partition key ordinals for shuffles.
    """

    def __init__(self, input_rel: Relation, kind: str, keys: Sequence[int] = ()):
        if kind not in EXCHANGE_KINDS:
            raise ValueError(f"unknown exchange kind {kind!r}")
        if kind == "shuffle" and not keys:
            raise ValueError("shuffle exchange requires partition keys")
        self.inputs = (input_rel,)
        self.kind = kind
        self.keys = list(keys)

    @property
    def input_rel(self) -> Relation:
        return self.inputs[0]

    def output_schema(self) -> Schema:
        return self.input_rel.output_schema()

    def to_dict(self) -> dict:
        return {
            "rel": "exchange",
            "input": self.input_rel.to_dict(),
            "kind": self.kind,
            "keys": list(self.keys),
        }

    def with_inputs(self, inputs: Sequence[Relation]) -> "ExchangeRel":
        (inp,) = inputs
        return ExchangeRel(inp, self.kind, self.keys)

    def __repr__(self) -> str:
        return f"Exchange({self.kind}, keys={self.keys})"


def rel_from_dict(data: dict) -> Relation:
    """Deserialize a relation tree from its dict form."""
    kind = data["rel"]
    if kind == "read":
        schema = Schema([(n, t) for n, t in data["base_schema"]])
        filt = expr_from_dict(data["filter"]) if data.get("filter") else None
        return ReadRel(data["table"], schema, data.get("projection"), filt)
    if kind == "filter":
        return FilterRel(rel_from_dict(data["input"]), expr_from_dict(data["condition"]))
    if kind == "project":
        return ProjectRel(
            rel_from_dict(data["input"]),
            [expr_from_dict(e) for e in data["expressions"]],
            data["names"],
        )
    if kind == "join":
        post = expr_from_dict(data["post_filter"]) if data.get("post_filter") else None
        return JoinRel(
            rel_from_dict(data["left"]),
            rel_from_dict(data["right"]),
            data["type"],
            data["left_keys"],
            data["right_keys"],
            post,
        )
    if kind == "aggregate":
        measures = [(expr_from_dict(m["agg"]), m["name"]) for m in data["measures"]]
        return AggregateRel(rel_from_dict(data["input"]), data["groups"], measures)
    if kind == "sort":
        return SortRel(rel_from_dict(data["input"]), [tuple(k) for k in data["keys"]])
    if kind == "fetch":
        return FetchRel(rel_from_dict(data["input"]), data["offset"], data.get("count"))
    if kind == "exchange":
        return ExchangeRel(rel_from_dict(data["input"]), data["kind"], data.get("keys", ()))
    raise ValueError(f"unknown relation kind {kind!r}")
