"""Reproduction of "Rethinking Analytical Processing in the GPU Era" (CIDR'26).

A complete, laptop-runnable reimplementation of the Sirius GPU-native SQL
engine and everything it stands on: a simulated GPU substrate with a
calibrated cost model, a libcudf-style kernel library, a Substrait-style
plan IR, a TPC-H-complete SQL frontend, host databases (single-node and
distributed), an NCCL-style exchange layer, and a benchmark harness that
regenerates every table and figure in the paper's evaluation.

Quick tour::

    from repro.hosts import MiniDuck, SiriusExtension, CpuEngine
    from repro.core import SiriusEngine
    from repro.tpch import generate_tpch

    db = MiniDuck()
    db.load_tables(generate_tpch(sf=0.05))
    db.install_extension(SiriusExtension(SiriusEngine.for_spec()))
    print(db.execute("select count(*) from lineitem").table.pretty())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "0.1.0"

__all__ = [
    "bench",
    "columnar",
    "core",
    "distributed",
    "faults",
    "gpu",
    "hosts",
    "kernels",
    "plan",
    "sql",
    "tpch",
]
