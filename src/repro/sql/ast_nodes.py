"""SQL abstract syntax tree produced by the parser.

Deliberately close to the grammar: the planner (binder) does all semantic
work.  Every expression node is a small dataclass; ``SelectStmt`` is the
single statement form (CTEs wrap it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "SqlExpr",
    "ColumnRef",
    "NumberLit",
    "StringLit",
    "DateLit",
    "IntervalLit",
    "BoolLit",
    "NullLit",
    "BinaryOp",
    "UnaryOp",
    "FuncCall",
    "AggCall",
    "CaseExpr",
    "CastExpr",
    "BetweenExpr",
    "InExpr",
    "LikeExpr",
    "IsNullExpr",
    "ExistsExpr",
    "ScalarSubquery",
    "Star",
    "SelectItem",
    "TableRef",
    "SubqueryRef",
    "JoinClause",
    "OrderItem",
    "SelectStmt",
]


class SqlExpr:
    """Base class for SQL expressions."""


@dataclass
class ColumnRef(SqlExpr):
    """``name`` or ``qualifier.name``."""

    name: str
    qualifier: Optional[str] = None

    def __repr__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass
class NumberLit(SqlExpr):
    value: float | int


@dataclass
class StringLit(SqlExpr):
    value: str


@dataclass
class DateLit(SqlExpr):
    """``date 'YYYY-MM-DD'``."""

    value: str


@dataclass
class IntervalLit(SqlExpr):
    """``interval '3' month`` — folded into date literals by the planner."""

    amount: int
    unit: str  # "day" | "month" | "year"


@dataclass
class BoolLit(SqlExpr):
    value: bool


@dataclass
class NullLit(SqlExpr):
    pass


@dataclass
class BinaryOp(SqlExpr):
    op: str  # + - * / % = <> < <= > >= and or
    left: SqlExpr
    right: SqlExpr


@dataclass
class UnaryOp(SqlExpr):
    op: str  # "-" | "not"
    operand: SqlExpr


@dataclass
class FuncCall(SqlExpr):
    """Scalar functions: extract, substring, coalesce, ..."""

    name: str
    args: list[SqlExpr]
    extra: dict = field(default_factory=dict)  # e.g. extract part


@dataclass
class AggCall(SqlExpr):
    """Aggregate invocation in a select list or HAVING."""

    func: str  # sum min max avg count
    arg: Optional[SqlExpr]  # None for count(*)
    distinct: bool = False


@dataclass
class CaseExpr(SqlExpr):
    whens: list[tuple[SqlExpr, SqlExpr]]
    default: Optional[SqlExpr]


@dataclass
class CastExpr(SqlExpr):
    operand: SqlExpr
    type_name: str


@dataclass
class BetweenExpr(SqlExpr):
    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False


@dataclass
class InExpr(SqlExpr):
    operand: SqlExpr
    # Either a literal list or a subquery.
    values: Optional[list[SqlExpr]] = None
    subquery: Optional["SelectStmt"] = None
    negated: bool = False


@dataclass
class LikeExpr(SqlExpr):
    operand: SqlExpr
    pattern: str
    negated: bool = False
    escape: Optional[str] = None  # single-char ESCAPE clause


@dataclass
class IsNullExpr(SqlExpr):
    operand: SqlExpr
    negated: bool = False


@dataclass
class ExistsExpr(SqlExpr):
    subquery: "SelectStmt"
    negated: bool = False


@dataclass
class ScalarSubquery(SqlExpr):
    subquery: "SelectStmt"


@dataclass
class Star(SqlExpr):
    """``*`` or ``alias.*`` in a select list (also count(*) / EXISTS)."""

    qualifier: Optional[str] = None


@dataclass
class SelectItem:
    expr: SqlExpr
    alias: Optional[str] = None


@dataclass
class TableRef:
    """A base table (or CTE) reference with optional alias."""

    name: str
    alias: Optional[str] = None


@dataclass
class SubqueryRef:
    """A derived table: ``(select ...) alias``."""

    subquery: "SelectStmt"
    alias: str


@dataclass
class JoinClause:
    """Explicit ``JOIN ... ON`` between the running FROM item and another."""

    kind: str  # "inner" | "left" | "cross"
    right: "TableRef | SubqueryRef"
    condition: Optional[SqlExpr]


@dataclass
class OrderItem:
    expr: SqlExpr
    ascending: bool = True


@dataclass
class SelectStmt:
    """One SELECT query (possibly nested)."""

    items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_tables: list = field(default_factory=list)  # TableRef | SubqueryRef
    joins: list[JoinClause] = field(default_factory=list)
    where: Optional[SqlExpr] = None
    group_by: list[SqlExpr] = field(default_factory=list)
    having: Optional[SqlExpr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    ctes: dict[str, "SelectStmt"] = field(default_factory=dict)
