"""SQL lexer for the host databases' frontend.

Tokenises the SQL dialect needed by all 22 TPC-H queries: identifiers,
keywords, numeric and string literals, typed literals (``date '...'``,
``interval '2' day``), operators, and punctuation.  Comments (``--`` and
``/* */``) are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "tokenize", "SqlSyntaxError", "KEYWORDS"]


class SqlSyntaxError(ValueError):
    """A lexing or parsing failure with position context."""


KEYWORDS = frozenset(
    """
    select from where group by having order asc desc limit offset distinct
    as and or not in exists between like escape is null case when then else end
    join inner left right outer on cross
    date interval year month day for
    sum min max avg count substring extract cast coalesce
    with union all any
    create view drop
    true false
    """.split()
)

_TWO_CHAR_OPS = ("<>", "<=", ">=", "!=", "||")
_ONE_CHAR_OPS = "+-*/%<>=(),.;"


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``keyword``, ``ident``, ``number``, ``string``,
    ``op``, or ``eof``.  Keywords and identifiers are lower-cased (the
    dialect is case-insensitive, like DuckDB's).
    """

    kind: str
    value: str
    pos: int

    def is_kw(self, *words: str) -> bool:
        return self.kind == "keyword" and self.value in words


def tokenize(sql: str) -> list[Token]:
    """Lex ``sql`` into tokens, ending with an ``eof`` token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise SqlSyntaxError(f"unterminated comment at {i}")
            i = end + 2
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise SqlSyntaxError(f"unterminated string literal at {i}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # Don't swallow "1." followed by an identifier (alias.col).
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("number", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j].lower()
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, i))
            i = j
            continue
        if ch == '"':
            j = sql.find('"', i + 1)
            if j < 0:
                raise SqlSyntaxError(f"unterminated quoted identifier at {i}")
            tokens.append(Token("ident", sql[i + 1 : j].lower(), i))
            i = j + 1
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("op", two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("op", ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", "", n))
    return tokens
