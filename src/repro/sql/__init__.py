"""SQL frontend: lexer, parser, and the binding/decorrelating planner."""

from .ast_nodes import SelectStmt
from .lexer import SqlSyntaxError, tokenize
from .parser import parse_sql
from .planner import SqlPlanner, SqlPlanningError, TableStats

__all__ = [
    "SelectStmt",
    "SqlPlanner",
    "SqlPlanningError",
    "SqlSyntaxError",
    "TableStats",
    "parse_sql",
    "tokenize",
]
