"""Plan-IR optimizer passes applied by the host databases.

These run on the Substrait-style IR *after* logical planning, which is
exactly where they benefit Sirius for free — the paper's drop-in
acceleration reuses the host's optimised plans:

* **projection pruning** — computes the columns each ReadRel actually
  feeds and sets its projection list, rewriting every ordinal reference
  downstream.  This is the dominant traffic saver for wide tables
  (lineitem has 16 columns; Q6 needs 4).
* **build-side selection** — for inner equi-joins, puts the side with the
  smaller estimated cardinality on the build (right) side.  The
  ClickHouse-style baseline skips this pass, which is one of the reasons
  its join-heavy queries degrade (§4.2's observation).
"""

from __future__ import annotations

from typing import Mapping

from ..plan import (
    AggregateCall,
    AggregateRel,
    ExchangeRel,
    Expression,
    FetchRel,
    FieldRef,
    FilterRel,
    JoinRel,
    Literal,
    Plan,
    ProjectRel,
    ReadRel,
    Relation,
    ScalarCall,
    SortRel,
    walk_expressions,
)

__all__ = ["optimize_plan", "prune_columns", "choose_build_sides", "push_filters_into_scans"]


def optimize_plan(plan: Plan, row_counts: Mapping[str, int] | None = None) -> Plan:
    """Apply all passes; returns a new validated plan."""
    rel = push_filters_into_scans(plan.root)
    rel = prune_columns(rel)
    rel = choose_build_sides(rel, row_counts or {})
    out = Plan(rel, plan.version)
    out.validate()
    return out


def push_filters_into_scans(rel: Relation) -> Relation:
    """Fuse ``Filter(Read)`` into the scan's pushed-down predicate.

    The scan then filters during the read itself — one fewer operator, and
    on the GPU one fewer intermediate materialisation.  Stacked filters
    fold into a conjunction.
    """
    new_inputs = [push_filters_into_scans(c) for c in rel.inputs]
    rel = rel.with_inputs(new_inputs) if rel.inputs else rel
    if isinstance(rel, FilterRel) and isinstance(rel.input_rel, ReadRel):
        read = rel.input_rel
        condition = rel.condition
        if read.filter_expr is not None:
            condition = ScalarCall("and", [read.filter_expr, condition])
        return ReadRel(read.table_name, read.base_schema, read.projection, condition)
    return rel


# -- projection pruning -------------------------------------------------------


def prune_columns(rel: Relation) -> Relation:
    """Push column requirements down to every ReadRel."""
    out_arity = len(rel.output_schema())
    pruned, _mapping = _prune(rel, set(range(out_arity)))
    return pruned


def _remap_expr(expr: Expression, mapping: dict[int, int]) -> Expression:
    if isinstance(expr, FieldRef):
        return FieldRef(mapping[expr.index])
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, ScalarCall):
        return ScalarCall(expr.func, [_remap_expr(a, mapping) for a in expr.args], expr.options)
    if isinstance(expr, AggregateCall):
        arg = None if expr.arg is None else _remap_expr(expr.arg, mapping)
        return AggregateCall(expr.op, arg, expr.distinct)
    raise TypeError(f"cannot remap {expr!r}")


def _expr_fields(expr: Expression) -> set[int]:
    return {n.index for n in walk_expressions(expr) if isinstance(n, FieldRef)}


def _prune(rel: Relation, required: set[int]) -> tuple[Relation, dict[int, int]]:
    """Prune ``rel`` to produce (at least) the ``required`` ordinals.

    Returns the rewritten relation and a mapping old-ordinal -> new-ordinal
    for the ordinals in ``required``.
    """
    if isinstance(rel, ReadRel):
        schema = rel.output_schema()
        needed = set(required)
        if rel.filter_expr is not None:
            needed |= _expr_fields(rel.filter_expr)
        keep = sorted(needed)
        if not keep:
            keep = [0] if len(schema) else []
        names = [schema.fields[i].name for i in keep]
        mapping = {old: new for new, old in enumerate(keep)}
        filt = _remap_expr(rel.filter_expr, mapping) if rel.filter_expr is not None else None
        # Projection names refer to the base schema.
        if rel.projection is not None:
            base_names = [rel.projection[i] for i in keep]
        else:
            base_names = names
        return ReadRel(rel.table_name, rel.base_schema, base_names, filt), mapping

    if isinstance(rel, FilterRel):
        needed = set(required) | _expr_fields(rel.condition)
        child, mapping = _prune(rel.input_rel, needed)
        cond = _remap_expr(rel.condition, mapping)
        return FilterRel(child, cond), {i: mapping[i] for i in required}

    if isinstance(rel, ProjectRel):
        keep = sorted(required) if required else ([0] if rel.expressions else [])
        child_needed: set[int] = set()
        for i in keep:
            child_needed |= _expr_fields(rel.expressions[i])
        child, mapping = _prune(rel.input_rel, child_needed)
        exprs = [_remap_expr(rel.expressions[i], mapping) for i in keep]
        names = [rel.names[i] for i in keep]
        out_map = {old: new for new, old in enumerate(keep)}
        return ProjectRel(child, exprs, names), out_map

    if isinstance(rel, JoinRel):
        left_arity = len(rel.left.output_schema())
        semi = rel.join_type in ("semi", "anti")
        left_needed = {i for i in required if i < left_arity}
        right_needed = (
            set() if semi else {i - left_arity for i in required if i >= left_arity}
        )
        left_needed |= set(rel.left_keys)
        right_needed |= set(rel.right_keys)
        if rel.post_filter is not None:
            for i in _expr_fields(rel.post_filter):
                if i < left_arity:
                    left_needed.add(i)
                else:
                    right_needed.add(i - left_arity)
        left, lmap = _prune(rel.left, left_needed)
        right, rmap = _prune(rel.right, right_needed)
        new_left_arity = len(left.output_schema())
        combined_map = dict(lmap)
        for old, new in rmap.items():
            combined_map[old + left_arity] = new + new_left_arity
        post = (
            _remap_expr(rel.post_filter, combined_map) if rel.post_filter is not None else None
        )
        out = JoinRel(
            left,
            right,
            rel.join_type,
            [lmap[k] for k in rel.left_keys],
            [rmap[k] for k in rel.right_keys],
            post,
        )
        if semi:
            return out, {i: lmap[i] for i in required}
        return out, {i: combined_map[i] for i in required}

    if isinstance(rel, AggregateRel):
        child_needed = set(rel.group_indices)
        for agg, _ in rel.measures:
            if agg.arg is not None:
                child_needed |= _expr_fields(agg.arg)
        child, mapping = _prune(rel.input_rel, child_needed)
        groups = [mapping[g] for g in rel.group_indices]
        measures = [
            (AggregateCall(a.op, None if a.arg is None else _remap_expr(a.arg, mapping), a.distinct), n)
            for a, n in rel.measures
        ]
        # Aggregate output ordinals are unchanged (groups then measures).
        return AggregateRel(child, groups, measures), {i: i for i in required}

    if isinstance(rel, SortRel):
        needed = set(required) | {i for i, _ in rel.sort_keys}
        child, mapping = _prune(rel.input_rel, needed)
        keys = [(mapping[i], asc) for i, asc in rel.sort_keys]
        return SortRel(child, keys), {i: mapping[i] for i in required}

    if isinstance(rel, FetchRel):
        child, mapping = _prune(rel.input_rel, required)
        return FetchRel(child, rel.offset, rel.count), mapping

    if isinstance(rel, ExchangeRel):
        needed = set(required) | set(rel.keys)
        child, mapping = _prune(rel.input_rel, needed)
        keys = [mapping[k] for k in rel.keys]
        return ExchangeRel(child, rel.kind, keys), {i: mapping[i] for i in required}

    raise TypeError(f"cannot prune {type(rel).__name__}")


# -- build-side selection -------------------------------------------------------


def choose_build_sides(rel: Relation, row_counts: Mapping[str, int]) -> Relation:
    """Swap inner-join inputs so the smaller side builds the hash table."""
    new_inputs = [choose_build_sides(c, row_counts) for c in rel.inputs]
    rel = rel.with_inputs(new_inputs) if rel.inputs else rel
    if not isinstance(rel, JoinRel) or rel.join_type != "inner" or not rel.left_keys:
        return rel
    left_est = _estimate(rel.left, row_counts)
    right_est = _estimate(rel.right, row_counts)
    if right_est <= left_est:
        return rel
    # Swap: output ordinals change, so a re-ordering projection restores
    # the original column order for parents.
    left_arity = len(rel.left.output_schema())
    right_arity = len(rel.right.output_schema())
    swapped = JoinRel(
        rel.right, rel.left, "inner", rel.right_keys, rel.left_keys,
        _swap_post_filter(rel.post_filter, left_arity, right_arity),
    )
    exprs = [FieldRef(right_arity + i) for i in range(left_arity)]
    exprs += [FieldRef(i) for i in range(right_arity)]
    names = rel.output_schema().names()
    return ProjectRel(swapped, exprs, names)


def _swap_post_filter(post, left_arity: int, right_arity: int):
    if post is None:
        return None
    mapping = {}
    for i in range(left_arity):
        mapping[i] = right_arity + i
    for j in range(right_arity):
        mapping[left_arity + j] = j
    return _remap_expr(post, mapping)


def _estimate(rel: Relation, row_counts: Mapping[str, int]) -> float:
    if isinstance(rel, ReadRel):
        base = float(row_counts.get(rel.table_name, 1000.0))
        return base * (0.25 if rel.filter_expr is not None else 1.0)
    if isinstance(rel, FilterRel):
        return _estimate(rel.input_rel, row_counts) * 0.25
    if isinstance(rel, (ProjectRel, SortRel, ExchangeRel)):
        return _estimate(rel.inputs[0], row_counts)
    if isinstance(rel, AggregateRel):
        return max(_estimate(rel.input_rel, row_counts) * 0.1, 1.0)
    if isinstance(rel, FetchRel):
        est = _estimate(rel.input_rel, row_counts)
        return min(est, rel.count) if rel.count is not None else est
    if isinstance(rel, JoinRel):
        left = _estimate(rel.left, row_counts)
        right = _estimate(rel.right, row_counts)
        if not rel.left_keys:
            return left * right
        if rel.join_type in ("semi", "anti"):
            return left * 0.5
        return max(left, right)
    return 1000.0
