"""Binder + logical planner: SQL AST -> Substrait-style plan IR.

This is the host-database frontend layer the paper's composable-systems
argument builds on: hosts parse and optimise SQL, then hand the plan to
Sirius.  The planner covers all 22 TPC-H queries:

* join-graph construction from comma-joins and explicit JOIN ... ON, with
  **greedy join ordering** by estimated cardinality (disable via
  ``reorder_joins=False`` for the ClickHouse-style baseline);
* single-table predicate pushdown into scans;
* subquery **decorrelation**:
  - correlated EXISTS / NOT EXISTS -> semi / anti join (with residual
    non-equi correlated predicates as join post-filters),
  - IN (subquery) -> semi join (NOT IN -> anti join),
  - correlated scalar aggregate subqueries -> group-by on the correlation
    key + inner join (Q2, Q17, Q20),
  - uncorrelated scalar subqueries -> single-row cross join (Q11, Q15, Q22);
* aggregate extraction (GROUP BY / HAVING / aggregates in expressions),
  with ``avg`` left to the engine to decompose;
* DISTINCT via grouping, ORDER BY (aliases, output columns, ordinals),
  LIMIT, and CTEs (WITH ... AS).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..columnar import Schema
from ..plan import (
    AggregateCall,
    AggregateRel,
    Expression,
    FetchRel,
    FieldRef,
    FilterRel,
    JoinRel,
    Literal,
    Plan,
    PlanValidationError,
    ProjectRel,
    ReadRel,
    Relation,
    ScalarCall,
    SortRel,
)
from . import ast_nodes as A
from .parser import parse_sql

__all__ = ["SqlPlanner", "SqlPlanningError", "TableStats"]

_CMP_TO_FUNC = {"=": "eq", "<>": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_FILTER_SELECTIVITY = 0.25  # per pushed conjunct, for join-order estimates


class SqlPlanningError(ValueError):
    """Semantic error while binding/planning a SQL statement."""


@dataclass
class TableStats:
    """Catalog metadata the planner needs per table.

    ``distinct`` maps column name -> number of distinct values; when
    present, join-output estimation uses the textbook
    ``|L| * |R| / max(ndv_l, ndv_r)`` formula, which is what keeps the
    greedy join order away from many-to-many blowups (e.g. joining
    customer to supplier on nationkey in Q5).
    """

    schema: Schema
    row_count: int
    distinct: dict[str, int] | None = None


@dataclass
class Scope:
    """Maps (qualifier, column) pairs to output ordinals of a relation."""

    columns: list[tuple[Optional[str], str]]
    parent: Optional["Scope"] = None

    def try_resolve(self, ref: A.ColumnRef) -> Optional[int]:
        matches = [
            i
            for i, (qual, name) in enumerate(self.columns)
            if name == ref.name and (ref.qualifier is None or ref.qualifier == qual)
        ]
        if len(matches) > 1 and ref.qualifier is None:
            raise SqlPlanningError(f"ambiguous column {ref.name!r}")
        return matches[0] if matches else None

    def resolve(self, ref: A.ColumnRef) -> int:
        idx = self.try_resolve(ref)
        if idx is None:
            raise SqlPlanningError(f"unknown column {ref!r}")
        return idx

    def is_outer(self, ref: A.ColumnRef) -> bool:
        """True if the ref resolves only in an enclosing query's scope."""
        if self.try_resolve(ref) is not None:
            return False
        scope = self.parent
        while scope is not None:
            if scope.try_resolve(ref) is not None:
                return True
            scope = scope.parent
        return False


@dataclass
class _FromNode:
    """One planned FROM item, before join-graph assembly."""

    relation: Relation
    scope_columns: list[tuple[Optional[str], str]]
    est_rows: float
    alias: Optional[str]
    # Position-in-node-scope -> estimated distinct count (capped by rows).
    distinct_by_pos: dict[int, float] = field(default_factory=dict)

    def scaled_distinct(self, pos: int) -> float:
        base = self.distinct_by_pos.get(pos, self.est_rows)
        return max(min(base, self.est_rows), 1.0)


class SqlPlanner:
    """Plans parsed SQL against a catalog of table schemas + stats."""

    def __init__(
        self,
        catalog: Mapping[str, TableStats],
        reorder_joins: bool = True,
        allow_correlated_subqueries: bool = True,
    ):
        """
        Args:
            catalog: Table name -> :class:`TableStats`.
            reorder_joins: Greedy cardinality-based join ordering (MiniDuck
                behaviour).  ``False`` keeps the FROM-clause order — the
                ClickHouse-style baseline.
            allow_correlated_subqueries: ``False`` raises on correlation,
                matching ClickHouse's documented limitation; the benchmark
                harness then supplies rewritten queries, as the paper did.
        """
        self.catalog = dict(catalog)
        self.reorder_joins = reorder_joins
        self.allow_correlated_subqueries = allow_correlated_subqueries

    # -- public API ---------------------------------------------------------

    def plan_sql(self, sql: str) -> Plan:
        stmt = parse_sql(sql)
        return self.plan_statement(stmt)

    def plan_statement(self, stmt: A.SelectStmt) -> Plan:
        ctes = {name: sub for name, sub in stmt.ctes.items()}
        rel, _ = self._plan_select(stmt, outer_scope=None, ctes=ctes)
        plan = Plan(rel)
        try:
            plan.validate()
        except PlanValidationError as exc:
            # Semantic defects (e.g. type mismatches the binder missed)
            # surface as planning errors, never structural ones.
            raise SqlPlanningError(str(exc)) from exc
        return plan

    # -- SELECT planning -----------------------------------------------------

    def _plan_select(
        self,
        stmt: A.SelectStmt,
        outer_scope: Optional[Scope],
        ctes: Mapping[str, A.SelectStmt],
    ) -> tuple[Relation, Scope]:
        if not stmt.from_tables:
            raise SqlPlanningError("SELECT without FROM is not supported")

        rel, scope = self._plan_from(stmt, outer_scope, ctes)

        if stmt.group_by or _contains_aggregate(stmt):
            rel, scope = self._plan_aggregate_select(stmt, rel, scope, ctes)
            if stmt.distinct:
                rel = AggregateRel(rel, list(range(len(scope.columns))), [])
            rel = self._plan_order_limit(stmt, rel, scope)
            return rel, scope

        return self._plan_plain_select_full(stmt, rel, scope)

    # -- FROM clause + WHERE classification -----------------------------------

    def _plan_from(self, stmt, outer_scope, ctes):
        nodes: list[_FromNode] = []
        for item in stmt.from_tables:
            nodes.append(self._plan_from_item(item, outer_scope, ctes))

        conjuncts = []
        for conj in _split_conjuncts(stmt.where):
            conjuncts.extend(_factor_or(conj))
        plain: list[A.SqlExpr] = []
        subquery_preds: list[A.SqlExpr] = []
        for conj in conjuncts:
            if _contains_subquery(conj):
                subquery_preds.append(conj)
            else:
                plain.append(conj)

        # Push single-table conjuncts into their node; collect join edges.
        edges: list[tuple[int, int, A.SqlExpr, A.SqlExpr]] = []  # (ni, nj, expr_i, expr_j)
        residual: list[A.SqlExpr] = []
        for conj in plain:
            placed = self._try_place_conjunct(conj, nodes, edges, outer_scope)
            if not placed:
                residual.append(conj)

        # Explicit JOIN ... ON clauses extend the graph in order.
        rel, scope = self._assemble_joins(nodes, edges, residual, stmt, outer_scope, ctes)

        # Apply residual (multi-table / OR) predicates.
        residual_nonouter = []
        for conj in residual:
            if self._references_outer(conj, scope):
                residual_nonouter.append(conj)  # handled by caller (correlation)
                continue
            rel = FilterRel(rel, self._plan_expr(conj, scope))
        if residual_nonouter:
            raise SqlPlanningError(
                "correlated predicate outside a recognised decorrelation pattern"
            )

        # Subquery predicates (EXISTS / IN / scalar comparisons).
        for pred in subquery_preds:
            rel, scope = self._apply_subquery_predicate(pred, rel, scope, ctes)
        return rel, scope

    def _plan_from_item(self, item, outer_scope, ctes) -> _FromNode:
        if isinstance(item, A.SubqueryRef):
            sub_rel, sub_scope = self._plan_select(item.subquery, outer_scope, ctes)
            cols = [(item.alias, name) for _, name in sub_scope.columns]
            est = max(_estimate_rows(sub_rel, self.catalog), 1.0)
            return _FromNode(sub_rel, cols, est, item.alias)
        if isinstance(item, A.TableRef):
            if item.name in ctes:
                sub_rel, sub_scope = self._plan_select(ctes[item.name], None, ctes)
                alias = item.alias or item.name
                cols = [(alias, name) for _, name in sub_scope.columns]
                est = max(_estimate_rows(sub_rel, self.catalog), 1.0)
                return _FromNode(sub_rel, cols, est, alias)
            stats = self.catalog.get(item.name)
            if stats is None:
                raise SqlPlanningError(f"unknown table {item.name!r}")
            alias = item.alias or item.name
            rel = ReadRel(item.name, stats.schema)
            cols = [(alias, f.name) for f in stats.schema]
            distinct = {}
            if stats.distinct:
                for pos, f in enumerate(stats.schema):
                    if f.name in stats.distinct:
                        distinct[pos] = float(stats.distinct[f.name])
            return _FromNode(rel, cols, float(stats.row_count), alias, distinct)
        raise SqlPlanningError(f"unsupported FROM item {item!r}")

    def _try_place_conjunct(self, conj, nodes, edges, outer_scope) -> bool:
        """Push a conjunct into one node, or record it as a join edge."""
        refs = _collect_column_refs(conj)
        owners = set()
        for ref in refs:
            owner = self._owning_node(ref, nodes)
            if owner is None:
                return False  # outer/unknown -> residual
            owners.add(owner)
        if len(owners) == 1:
            idx = owners.pop()
            node = nodes[idx]
            scope = Scope(node.scope_columns)
            node.relation = FilterRel(node.relation, self._plan_expr(conj, scope))
            node.est_rows = max(node.est_rows * _FILTER_SELECTIVITY, 1.0)
            return True
        if (
            len(owners) == 2
            and isinstance(conj, A.BinaryOp)
            and conj.op == "="
        ):
            li = self._owning_side(conj.left, nodes)
            ri = self._owning_side(conj.right, nodes)
            if li is not None and ri is not None and li != ri:
                edges.append((li, ri, conj.left, conj.right))
                return True
        return False

    def _owning_node(self, ref: A.ColumnRef, nodes) -> Optional[int]:
        for i, node in enumerate(nodes):
            if Scope(node.scope_columns).try_resolve(ref) is not None:
                return i
        return None

    def _owning_side(self, expr, nodes) -> Optional[int]:
        refs = _collect_column_refs(expr)
        owners = {self._owning_node(r, nodes) for r in refs}
        owners.discard(None)
        return owners.pop() if len(owners) == 1 else None

    def _assemble_joins(self, nodes, edges, residual, stmt, outer_scope, ctes):
        """Greedy (or in-order) assembly of the join graph, then explicit
        JOIN clauses."""
        if len(nodes) == 1 and not stmt.joins:
            node = nodes[0]
            return node.relation, Scope(node.scope_columns, parent=outer_scope)

        remaining = list(range(len(nodes)))
        if self.reorder_joins:
            start = min(remaining, key=lambda i: nodes[i].est_rows)
        else:
            start = remaining[0]
        joined = {start}
        remaining.remove(start)
        rel = nodes[start].relation
        scope_cols = list(nodes[start].scope_columns)
        node_offsets = {start: 0}
        est = nodes[start].est_rows
        comp_distinct: dict[int, float] = dict(nodes[start].distinct_by_pos)
        used_edges: set[int] = set()

        def edge_join_estimate(node_idx, connecting) -> float:
            """Textbook output estimate: |C| * |N| / max ndv over the most
            selective connecting key; the max-rule when ndv is unknown."""
            node = nodes[node_idx]
            best_d = 0.0
            for e_idx in connecting:
                a, b, ea, eb = edges[e_idx]
                comp_expr, node_expr = (ea, eb) if a in joined else (eb, ea)
                comp_owner = a if a in joined else b
                d_comp = d_node = None
                cref = _single_ref(comp_expr)
                if cref is not None:
                    local = Scope(nodes[comp_owner].scope_columns).try_resolve(cref)
                    if local is not None:
                        pos = node_offsets[comp_owner] + local
                        raw = comp_distinct.get(pos)
                        if raw is not None:
                            d_comp = max(min(raw, est), 1.0)
                nref = _single_ref(node_expr)
                if nref is not None:
                    npos = Scope(node.scope_columns).try_resolve(nref)
                    if npos is not None and npos in node.distinct_by_pos:
                        d_node = node.scaled_distinct(npos)
                candidates_d = [d for d in (d_comp, d_node) if d is not None]
                if candidates_d:
                    best_d = max(best_d, max(candidates_d))
            if best_d <= 0:
                return max(est, node.est_rows)
            return max(est * node.est_rows / best_d, 1.0)

        while remaining:
            candidates = []
            for i in remaining:
                connecting = [
                    e_idx
                    for e_idx, (a, b, _, __) in enumerate(edges)
                    if e_idx not in used_edges and ((a in joined and b == i) or (b in joined and a == i))
                ]
                if connecting:
                    candidates.append((i, connecting))
            if not self.reorder_joins:
                # ClickHouse-style: join strictly in FROM order.  When the
                # next table shares no join edge with what has been joined
                # so far, this degenerates to a cross join — the Q9-never-
                # finishes behaviour the paper observed.
                next_i = remaining[0]
                chosen_edges = next(
                    (edges_list for i, edges_list in candidates if i == next_i), []
                )
                next_est = max(est, nodes[next_i].est_rows)
            elif not candidates:
                # Disconnected component: cross join the smallest node.
                next_i = min(remaining, key=lambda i: nodes[i].est_rows)
                chosen_edges = []
                next_est = est * nodes[next_i].est_rows
            else:
                next_i, chosen_edges, next_est = min(
                    (
                        (i, conn, edge_join_estimate(i, conn))
                        for i, conn in candidates
                    ),
                    key=lambda c: c[2],
                )

            node = nodes[next_i]
            left_scope = Scope(scope_cols)
            right_scope = Scope(node.scope_columns)
            left_keys, right_keys = [], []
            for e_idx in chosen_edges:
                a, b, ea, eb = edges[e_idx]
                if a in joined:
                    lexpr, rexpr = ea, eb
                else:
                    lexpr, rexpr = eb, ea
                lref, rref = _single_ref(lexpr), _single_ref(rexpr)
                if lref is None or rref is None:
                    continue  # complex equi-expressions become post filters
                left_keys.append(left_scope.resolve(lref))
                right_keys.append(right_scope.resolve(rref))
                used_edges.add(e_idx)
            rel = JoinRel(rel, node.relation, "inner", left_keys, right_keys)
            node_offsets[next_i] = len(scope_cols)
            for pos, d in node.distinct_by_pos.items():
                comp_distinct[len(scope_cols) + pos] = d
            scope_cols = _merged_scope_columns(scope_cols, node.scope_columns)
            est = max(next_est, 1.0)
            joined.add(next_i)
            remaining.remove(next_i)

        scope = Scope(scope_cols, parent=outer_scope)

        # Unused edges (e.g. cycles in the join graph) become filters.
        for e_idx, (a, b, ea, eb) in enumerate(edges):
            if e_idx not in used_edges:
                cond = A.BinaryOp("=", ea, eb)
                rel = FilterRel(rel, self._plan_expr(cond, scope))

        # Explicit JOIN ... ON clauses (left outer joins, Q13).
        for clause in stmt.joins:
            rel, scope = self._apply_explicit_join(clause, rel, scope, outer_scope, ctes)
        return rel, scope

    def _apply_explicit_join(self, clause: A.JoinClause, rel, scope, outer_scope, ctes):
        node = self._plan_from_item(clause.right, outer_scope, ctes)
        right_scope = Scope(node.scope_columns)
        combined_cols = _merged_scope_columns(scope.columns, node.scope_columns)
        combined = Scope(combined_cols, parent=outer_scope)
        left_keys, right_keys = [], []
        post = None
        right_rel = node.relation
        if clause.condition is not None:
            for conj in _split_conjuncts(clause.condition):
                lref = rref = None
                if isinstance(conj, A.BinaryOp) and conj.op == "=":
                    l0, r0 = _single_ref(conj.left), _single_ref(conj.right)
                    if l0 is not None and r0 is not None:
                        if scope.try_resolve(l0) is not None and right_scope.try_resolve(r0) is not None:
                            lref, rref = l0, r0
                        elif scope.try_resolve(r0) is not None and right_scope.try_resolve(l0) is not None:
                            lref, rref = r0, l0
                if lref is not None:
                    left_keys.append(scope.resolve(lref))
                    right_keys.append(right_scope.resolve(rref))
                elif clause.kind == "left":
                    # A residual ON conjunct of a LEFT join restricts which
                    # right rows *match*; unmatched left rows must still
                    # null-extend.  A post-join filter would wrongly drop
                    # them, so push right-only conjuncts below the join and
                    # reject anything referencing the left side.
                    refs = _collect_column_refs(conj)
                    if any(right_scope.try_resolve(r) is None for r in refs):
                        raise SqlPlanningError(
                            "LEFT JOIN ON conditions beyond equi-keys may only "
                            f"reference the right side: {conj!r}"
                        )
                    right_rel = FilterRel(right_rel, self._plan_expr(conj, right_scope))
                else:
                    planned = self._plan_expr(conj, combined)
                    post = planned if post is None else ScalarCall("and", [post, planned])
        join_type = "inner" if clause.kind == "cross" else clause.kind
        rel = JoinRel(rel, right_rel, join_type, left_keys, right_keys, post)
        return rel, combined

    # -- subquery predicates ------------------------------------------------------

    def _apply_subquery_predicate(self, pred, rel, scope, ctes):
        if isinstance(pred, A.ExistsExpr):
            return self._apply_exists(pred.subquery, pred.negated, rel, scope, ctes)
        if isinstance(pred, A.UnaryOp) and pred.op == "not" and isinstance(pred.operand, A.ExistsExpr):
            inner = pred.operand
            return self._apply_exists(inner.subquery, not inner.negated, rel, scope, ctes)
        if isinstance(pred, A.InExpr) and pred.subquery is not None:
            return self._apply_in_subquery(pred, rel, scope, ctes)
        if isinstance(pred, A.BinaryOp) and pred.op in _CMP_TO_FUNC:
            if isinstance(pred.right, A.ScalarSubquery):
                return self._apply_scalar_compare(
                    pred.left, _CMP_TO_FUNC[pred.op], pred.right.subquery, rel, scope, ctes
                )
            if isinstance(pred.left, A.ScalarSubquery):
                flipped = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}.get(
                    _CMP_TO_FUNC[pred.op], _CMP_TO_FUNC[pred.op]
                )
                return self._apply_scalar_compare(
                    pred.right, flipped, pred.left.subquery, rel, scope, ctes
                )
        raise SqlPlanningError(f"unsupported subquery predicate {pred!r}")

    def _split_correlation(self, sub: A.SelectStmt, inner_nodes_scope: Scope, outer_scope: Scope):
        """Partition a subquery's WHERE into inner conjuncts, correlation
        equalities (outer_ref, inner_expr), and residual correlated exprs."""
        inner_conjs: list[A.SqlExpr] = []
        corr_eq: list[tuple[A.ColumnRef, A.SqlExpr]] = []
        residual: list[A.SqlExpr] = []
        for conj in _split_conjuncts(sub.where):
            refs = _collect_column_refs(conj)
            outer_refs = [r for r in refs if inner_nodes_scope.try_resolve(r) is None]
            if not outer_refs:
                inner_conjs.append(conj)
                continue
            if not self.allow_correlated_subqueries:
                raise SqlPlanningError(
                    "correlated subqueries are not supported by this engine"
                )
            for r in outer_refs:
                if outer_scope.try_resolve(r) is None:
                    raise SqlPlanningError(f"unresolvable column {r!r} in subquery")
            matched = False
            if isinstance(conj, A.BinaryOp) and conj.op == "=":
                for outer_side, inner_side in ((conj.left, conj.right), (conj.right, conj.left)):
                    ref = _single_ref(outer_side)
                    inner_refs = _collect_column_refs(inner_side)
                    if (
                        ref is not None
                        and inner_nodes_scope.try_resolve(ref) is None
                        and outer_scope.try_resolve(ref) is not None
                        and inner_refs
                        and all(inner_nodes_scope.try_resolve(r) is not None for r in inner_refs)
                    ):
                        corr_eq.append((ref, inner_side))
                        matched = True
                        break
            if not matched:
                residual.append(conj)
        return inner_conjs, corr_eq, residual

    def _plan_subquery_base(self, sub: A.SelectStmt, outer_scope: Scope, ctes):
        """Plan a subquery's FROM + uncorrelated filters; returns the inner
        relation, its scope, and the correlation info."""
        nodes = [self._plan_from_item(item, None, ctes) for item in sub.from_tables]
        probe_scope = Scope([c for n in nodes for c in n.scope_columns])
        inner_conjs, corr_eq, residual = self._split_correlation(sub, probe_scope, outer_scope)

        # Re-plan the inner FROM with only the uncorrelated conjuncts.
        inner_where = _conjoin(inner_conjs)
        rebuilt = A.SelectStmt(
            items=sub.items,
            from_tables=sub.from_tables,
            joins=sub.joins,
            where=inner_where,
        )
        inner_rel, inner_scope = self._plan_from(rebuilt, None, ctes)
        return inner_rel, inner_scope, corr_eq, residual

    def _apply_exists(self, sub, negated, rel, scope, ctes):
        inner_rel, inner_scope, corr_eq, residual = self._plan_subquery_base(sub, scope, ctes)
        left_keys, right_keys, inner_rel, inner_scope = self._correlation_keys(
            corr_eq, inner_rel, inner_scope, scope
        )
        post = self._residual_post_filter(residual, scope, inner_scope)
        join_type = "anti" if negated else "semi"
        out = JoinRel(rel, inner_rel, join_type, left_keys, right_keys, post)
        return out, scope

    def _apply_in_subquery(self, pred: A.InExpr, rel, scope, ctes):
        sub = pred.subquery
        if len(sub.items) != 1:
            raise SqlPlanningError("IN subquery must select exactly one column")

        if sub.group_by or _contains_aggregate(sub) or sub.having is not None:
            # Aggregating IN subqueries (Q18) must be uncorrelated.
            inner_rel, inner_scope = self._plan_select(sub, None, ctes)
            corr_right_keys: list[int] = []
            corr_left_refs: list[A.ColumnRef] = []
        else:
            inner_rel, inner_scope, corr_eq, residual = self._plan_subquery_base(
                sub, scope, ctes
            )
            if residual:
                raise SqlPlanningError("non-equality correlation in IN subquery")
            value_expr = self._plan_expr(sub.items[0].expr, inner_scope)
            corr_exprs = [self._plan_expr(e, inner_scope) for _, e in corr_eq]
            names = ["__inval"] + [f"__corr{i}" for i in range(len(corr_exprs))]
            inner_rel = ProjectRel(inner_rel, [value_expr] + corr_exprs, names)
            inner_scope = Scope([(None, n) for n in names])
            corr_right_keys = list(range(1, 1 + len(corr_exprs)))
            corr_left_refs = [ref for ref, _ in corr_eq]

        # The IN operand: use its ordinal directly when it is a plain
        # column, otherwise append a computed key column to the left side
        # (internal names are positional; the scope is unaffected).
        operand = self._plan_expr(pred.operand, scope)
        if isinstance(operand, FieldRef):
            left_value_key = operand.index
        else:
            n = len(scope.columns)
            exprs = [FieldRef(i) for i in range(n)] + [operand]
            names = [f"c{i}" for i in range(n)] + ["__inop"]
            rel = ProjectRel(rel, exprs, names)
            scope = Scope(list(scope.columns) + [(None, "__inop")], parent=scope.parent)
            left_value_key = n

        left_keys = [left_value_key] + [scope.resolve(r) for r in corr_left_refs]
        right_keys = [0] + corr_right_keys
        join_type = "anti" if pred.negated else "semi"
        out = JoinRel(rel, inner_rel, join_type, left_keys, right_keys)
        return out, scope

    def _apply_scalar_compare(self, outer_expr, cmp_func, sub, rel, scope, ctes):
        """``outer_expr <cmp> (SELECT agg ... [WHERE corr])``."""
        if len(sub.items) != 1:
            raise SqlPlanningError("scalar subquery must select exactly one column")
        inner_rel, inner_scope, corr_eq, residual = self._plan_subquery_base(sub, scope, ctes)
        if residual:
            raise SqlPlanningError("non-equality correlation in scalar subquery")

        if corr_eq:
            # Correlated: aggregate grouped by the correlation keys, then
            # inner-join back on them (classic decorrelation).
            corr_exprs = [self._plan_expr(e, inner_scope) for _, e in corr_eq]
            aggs = _collect_agg_calls(sub.items[0].expr)
            if not aggs:
                raise SqlPlanningError("correlated scalar subquery must aggregate")
            pre_exprs = list(corr_exprs)
            pre_names = [f"__ck{i}" for i in range(len(corr_exprs))]
            arg_positions = {}
            for i, agg in enumerate(aggs):
                if agg.arg is not None:
                    arg_positions[id(agg)] = len(pre_exprs)
                    pre_exprs.append(self._plan_expr(agg.arg, inner_scope))
                    pre_names.append(f"__a{i}")
            pre = ProjectRel(inner_rel, pre_exprs, pre_names)
            measures = []
            measure_pos = {}
            for i, agg in enumerate(aggs):
                arg = (
                    FieldRef(arg_positions[id(agg)]) if agg.arg is not None else None
                )
                op = agg.func if agg.func != "count" or arg is not None else "count_star"
                if agg.func == "count" and agg.distinct:
                    op = "count_distinct"
                measures.append((AggregateCall(op, arg, agg.distinct), f"__m{i}"))
                measure_pos[id(agg)] = len(corr_exprs) + i
            agg_rel = AggregateRel(pre, list(range(len(corr_exprs))), measures)
            agg_scope_cols = [(None, n) for n in pre_names[: len(corr_exprs)]]
            agg_scope_cols += [(None, f"__m{i}") for i in range(len(aggs))]
            # The scalar value may be an expression over aggregates.
            value_expr = self._plan_agg_expr(
                sub.items[0].expr, Scope(agg_scope_cols), measure_pos, {}, aggs
            )
            value_rel = ProjectRel(
                agg_rel,
                [FieldRef(i) for i in range(len(corr_exprs))] + [value_expr],
                [f"__ck{i}" for i in range(len(corr_exprs))] + ["__scalar"],
            )
            left_keys = [scope.resolve(ref) for ref, _ in corr_eq]
            right_keys = list(range(len(corr_exprs)))
            joined = JoinRel(rel, value_rel, "inner", left_keys, right_keys)
            new_cols = scope.columns + [(None, f"__ck{i}") for i in range(len(corr_exprs))] + [
                (None, "__scalar")
            ]
            new_scope = Scope(new_cols, parent=scope.parent)
            value_ref = FieldRef(len(new_cols) - 1)
        else:
            # Uncorrelated: plan the whole scalar select; 1-row cross join.
            value_rel, value_scope = self._plan_select(sub, scope, ctes)
            joined = JoinRel(rel, value_rel, "inner", [], [])
            new_cols = scope.columns + [(None, f"__sq_{name}") for _, name in value_scope.columns]
            new_scope = Scope(new_cols, parent=scope.parent)
            value_ref = FieldRef(len(scope.columns))

        outer_planned = self._plan_expr(outer_expr, new_scope)
        condition = ScalarCall(cmp_func, [outer_planned, value_ref])
        out = FilterRel(joined, condition)
        return out, new_scope

    def _correlation_keys(self, corr_eq, inner_rel, inner_scope, outer_scope):
        """Resolve correlation equalities to join key ordinals, projecting
        computed inner expressions when needed."""
        left_keys, right_keys = [], []
        extra_exprs, extra_names = [], []
        for ref, inner_expr in corr_eq:
            left_keys.append(outer_scope.resolve(ref))
            iref = _single_ref(inner_expr)
            if iref is not None and inner_scope.try_resolve(iref) is not None:
                right_keys.append(inner_scope.resolve(iref))
            else:
                pos = len(inner_scope.columns) + len(extra_exprs)
                extra_exprs.append(self._plan_expr(inner_expr, inner_scope))
                extra_names.append(f"__corr{pos}")
                right_keys.append(pos)
        if extra_exprs:
            exprs = [FieldRef(i) for i in range(len(inner_scope.columns))] + extra_exprs
            names = [f"c{i}" for i in range(len(inner_scope.columns))] + extra_names
            inner_rel = ProjectRel(inner_rel, exprs, names)
            inner_scope = Scope(
                list(inner_scope.columns) + [(None, n) for n in extra_names]
            )
        return left_keys, right_keys, inner_rel, inner_scope

    def _residual_post_filter(self, residual, outer_scope, inner_scope):
        """Plan residual correlated predicates against the combined
        (outer ++ inner) schema for use as a semi/anti join post-filter."""
        if not residual:
            return None
        combined = Scope(
            list(outer_scope.columns) + list(inner_scope.columns), parent=outer_scope.parent
        )
        post = None
        for conj in residual:
            planned = self._plan_expr(conj, combined)
            post = planned if post is None else ScalarCall("and", [post, planned])
        return post

    def _references_outer(self, expr, scope: Scope) -> bool:
        return any(
            scope.try_resolve(r) is None and scope.is_outer(r)
            for r in _collect_column_refs(expr)
        )

    # -- aggregation ------------------------------------------------------------

    def _plan_aggregate_select(self, stmt, rel, scope, ctes):
        group_items = [self._resolve_group_item(g, stmt, scope) for g in stmt.group_by]
        group_exprs = [self._plan_expr(g, scope) for g in group_items]
        group_keys = [_expr_key(g) for g in group_items]

        aggs: list[A.AggCall] = []
        for item in stmt.items:
            aggs.extend(_collect_agg_calls(item.expr))
        if stmt.having is not None:
            aggs.extend(_collect_agg_calls(stmt.having))
        for order in stmt.order_by:
            aggs.extend(_collect_agg_calls(order.expr))

        # Pre-projection: group expressions then aggregate arguments.
        pre_exprs = list(group_exprs)
        pre_names = [f"__g{i}" for i in range(len(group_exprs))]
        arg_pos: dict[int, int] = {}
        for i, agg in enumerate(aggs):
            if agg.arg is not None:
                arg_pos[id(agg)] = len(pre_exprs)
                pre_exprs.append(self._plan_expr(agg.arg, scope))
                pre_names.append(f"__a{i}")
        if not pre_exprs:
            # count(*)-only queries: keep one column so the projected table
            # retains its row count (zero-column tables have no length).
            pre_exprs = [FieldRef(0)]
            pre_names = ["__rowcount_anchor"]
        pre = ProjectRel(rel, pre_exprs, pre_names)

        measures = []
        measure_pos: dict[int, int] = {}
        for i, agg in enumerate(aggs):
            arg = FieldRef(arg_pos[id(agg)]) if agg.arg is not None else None
            op = agg.func
            if op == "count" and agg.distinct:
                op = "count_distinct"
            elif op == "count" and arg is None:
                op = "count_star"
            measures.append((AggregateCall(op, arg, agg.distinct), f"__m{i}"))
            measure_pos[id(agg)] = len(group_exprs) + i
        agg_rel = AggregateRel(pre, list(range(len(group_exprs))), measures)

        agg_scope = Scope(
            [(None, f"__g{i}") for i in range(len(group_exprs))]
            + [(None, f"__m{i}") for i in range(len(aggs))],
            parent=scope.parent,
        )
        group_pos = {key: i for i, key in enumerate(group_keys)}

        out_rel: Relation = agg_rel
        if stmt.having is not None:
            scalar_subs = _collect_scalar_subqueries(stmt.having)
            if scalar_subs:
                out_rel, agg_scope, having_expr = self._plan_having_with_subquery(
                    stmt.having, out_rel, agg_scope, group_pos, measure_pos, aggs, ctes, scope
                )
                out_rel = FilterRel(out_rel, having_expr)
            else:
                having_expr = self._plan_agg_expr(
                    stmt.having, agg_scope, measure_pos, group_pos, aggs
                )
                out_rel = FilterRel(out_rel, having_expr)

        exprs, names = [], []
        for i, item in enumerate(stmt.items):
            exprs.append(
                self._plan_agg_expr(item.expr, agg_scope, measure_pos, group_pos, aggs)
            )
            names.append(_item_name(item, i))
        names = _dedupe(names)
        out_rel = ProjectRel(out_rel, exprs, names)
        out_scope = Scope([(None, n) for n in names], parent=scope.parent)
        return out_rel, out_scope

    def _resolve_group_item(self, g, stmt, scope) -> A.SqlExpr:
        """Resolve GROUP BY ordinals (``GROUP BY 1``) and select-list
        aliases (``GROUP BY sz``) to the underlying select expression."""
        if isinstance(g, A.NumberLit):
            pos = int(g.value) - 1
            if not 0 <= pos < len(stmt.items):
                raise SqlPlanningError(f"GROUP BY position {g.value} out of range")
            item = stmt.items[pos]
            if isinstance(item.expr, A.Star):
                raise SqlPlanningError("GROUP BY ordinal cannot reference *")
            if _collect_agg_calls(item.expr):
                raise SqlPlanningError("GROUP BY ordinal references an aggregate")
            return item.expr
        if (
            isinstance(g, A.ColumnRef)
            and g.qualifier is None
            and scope.try_resolve(g) is None
        ):
            for item in stmt.items:
                if item.alias == g.name and not isinstance(item.expr, A.Star):
                    if _collect_agg_calls(item.expr):
                        raise SqlPlanningError(f"GROUP BY alias {g.name!r} is an aggregate")
                    return item.expr
        return g

    def _plan_having_with_subquery(
        self, having, rel, agg_scope, group_pos, measure_pos, aggs, ctes, base_scope
    ):
        """HAVING with an uncorrelated scalar subquery (Q11): cross-join the
        single-row subquery result, compare, and keep the agg schema."""
        subs = _collect_scalar_subqueries(having)
        if len(subs) != 1:
            raise SqlPlanningError("only one scalar subquery per HAVING is supported")
        sub = subs[0]
        value_rel, value_scope = self._plan_select(sub.subquery, None, ctes)
        joined = JoinRel(rel, value_rel, "inner", [], [])
        new_scope = Scope(
            list(agg_scope.columns) + [(None, "__hv")], parent=agg_scope.parent
        )
        value_ref = FieldRef(len(agg_scope.columns))

        def plan_inner(expr):
            if isinstance(expr, A.ScalarSubquery):
                return value_ref
            if isinstance(expr, A.BinaryOp):
                if expr.op in ("and", "or"):
                    return ScalarCall(expr.op, [plan_inner(expr.left), plan_inner(expr.right)])
                if expr.op in _CMP_TO_FUNC:
                    return ScalarCall(
                        _CMP_TO_FUNC[expr.op], [plan_inner(expr.left), plan_inner(expr.right)]
                    )
                return ScalarCall(
                    {"+": "add", "-": "subtract", "*": "multiply", "/": "divide"}[expr.op],
                    [plan_inner(expr.left), plan_inner(expr.right)],
                )
            return self._plan_agg_expr(expr, new_scope, measure_pos, group_pos, aggs)

        return joined, new_scope, plan_inner(having)

    def _plan_agg_expr(self, expr, agg_scope, measure_pos, group_pos, aggs) -> Expression:
        """Plan an expression in post-aggregate context: AggCalls map to
        measure ordinals, group expressions map to group ordinals."""
        key = _expr_key(expr)
        if key in group_pos:
            return FieldRef(group_pos[key])
        if isinstance(expr, A.AggCall):
            for agg in aggs:
                if agg is expr or (
                    agg.func == expr.func
                    and agg.distinct == expr.distinct
                    and _expr_key(agg.arg) == _expr_key(expr.arg)
                ):
                    return FieldRef(measure_pos[id(agg)])
            raise SqlPlanningError(f"aggregate {expr!r} not collected")
        if isinstance(expr, A.BinaryOp):
            func = {"+": "add", "-": "subtract", "*": "multiply", "/": "divide", "%": "modulo"}.get(
                expr.op
            )
            if func is None:
                func = _CMP_TO_FUNC.get(expr.op, expr.op)  # and/or/cmp
            return ScalarCall(
                func,
                [
                    self._plan_agg_expr(expr.left, agg_scope, measure_pos, group_pos, aggs),
                    self._plan_agg_expr(expr.right, agg_scope, measure_pos, group_pos, aggs),
                ],
            )
        if isinstance(expr, A.UnaryOp) and expr.op == "-":
            return ScalarCall(
                "negate", [self._plan_agg_expr(expr.operand, agg_scope, measure_pos, group_pos, aggs)]
            )
        if isinstance(expr, (A.NumberLit, A.StringLit, A.DateLit, A.BoolLit)):
            return self._plan_expr(expr, agg_scope)
        plan = lambda e: self._plan_agg_expr(e, agg_scope, measure_pos, group_pos, aggs)  # noqa: E731
        if isinstance(expr, A.FuncCall):
            return self._plan_func(expr, agg_scope, plan=plan)
        if isinstance(expr, A.CaseExpr):
            args = []
            for cond, result in expr.whens:
                args.append(plan(cond))
                args.append(plan(result))
            args.append(Literal(None) if expr.default is None else plan(expr.default))
            return ScalarCall("case", args)
        if isinstance(expr, A.ColumnRef):
            # A bare column in an aggregate query must be a group expression.
            raise SqlPlanningError(
                f"column {expr!r} must appear in GROUP BY or inside an aggregate"
            )
        raise SqlPlanningError(f"unsupported expression in aggregate context: {expr!r}")

    def _plan_plain_select_full(self, stmt, rel, scope):
        """Plain (non-aggregate) select: projection, DISTINCT, ORDER BY
        (including ordering by columns that are *not* in the select list —
        standard SQL allows it; a hidden projection carries them through
        the sort and a final projection drops them), and LIMIT."""
        out_rel, out_scope = self._plan_plain_select(stmt, rel, scope)
        out_names = [name for _, name in out_scope.columns]

        if stmt.distinct:
            out_rel = AggregateRel(out_rel, list(range(len(out_scope.columns))), [])

        hidden: list[A.SqlExpr] = []
        keys: list[tuple[int, bool]] = []
        for order in stmt.order_by:
            try:
                idx = self._order_index(order.expr, stmt, out_names, out_scope)
                keys.append((idx, order.ascending))
            except SqlPlanningError:
                if stmt.distinct:
                    raise SqlPlanningError(
                        "ORDER BY on a column outside the select list is "
                        "incompatible with DISTINCT"
                    )
                keys.append((len(out_names) + len(hidden), order.ascending))
                hidden.append(order.expr)

        if hidden:
            # Re-project from the pre-projection relation: select items plus
            # the hidden order keys, sort, then drop the hidden columns.
            exprs, names = [], []
            for i, item in enumerate(stmt.items):
                if isinstance(item.expr, A.Star):
                    raise SqlPlanningError("SELECT * with hidden ORDER BY keys")
                exprs.append(self._plan_expr(item.expr, scope))
                names.append(_item_name(item, i))
            names = _dedupe(names)
            for i, expr in enumerate(hidden):
                exprs.append(self._plan_expr(expr, scope))
                names.append(f"__ob{i}")
            widened = ProjectRel(rel, exprs, names)
            sorted_rel = SortRel(widened, keys)
            out_rel = ProjectRel(
                sorted_rel,
                [FieldRef(i) for i in range(len(out_names))],
                names[: len(out_names)],
            )
        elif keys:
            out_rel = SortRel(out_rel, keys)

        if stmt.limit is not None or stmt.offset:
            out_rel = FetchRel(out_rel, stmt.offset, stmt.limit)
        return out_rel, out_scope

    def _plan_plain_select(self, stmt, rel, scope):
        exprs, names = [], []
        for i, item in enumerate(stmt.items):
            if isinstance(item.expr, A.Star):
                qualifier = item.expr.qualifier
                matched = False
                for j, (qual, name) in enumerate(scope.columns):
                    if qualifier is not None and qual != qualifier:
                        continue
                    matched = True
                    exprs.append(FieldRef(j))
                    names.append(name)
                if qualifier is not None and not matched:
                    raise SqlPlanningError(f"unknown table alias {qualifier!r} in {qualifier}.*")
                continue
            exprs.append(self._plan_expr(item.expr, scope))
            names.append(_item_name(item, i))
        names = _dedupe(names)
        out = ProjectRel(rel, exprs, names)
        out_scope = Scope([(None, n) for n in names], parent=scope.parent)
        return out, out_scope

    def _plan_order_limit(self, stmt, rel, scope):
        if stmt.order_by:
            out_names = [name for _, name in _scope_columns(scope)]
            keys = []
            for order in stmt.order_by:
                idx = self._order_index(order.expr, stmt, out_names, scope)
                keys.append((idx, order.ascending))
            rel = SortRel(rel, keys)
        if stmt.limit is not None or stmt.offset:
            rel = FetchRel(rel, stmt.offset, stmt.limit)
        return rel

    def _order_index(self, expr, stmt, out_names, scope) -> int:
        if isinstance(expr, A.NumberLit):
            pos = int(expr.value) - 1
            if not 0 <= pos < len(out_names):
                raise SqlPlanningError(f"ORDER BY position {expr.value} out of range")
            return pos
        if isinstance(expr, A.ColumnRef) and expr.name in out_names:
            return out_names.index(expr.name)
        # Match by expression structure against select items.
        key = _expr_key(expr)
        for i, item in enumerate(stmt.items):
            if _expr_key(item.expr) == key:
                return i
        raise SqlPlanningError(f"cannot resolve ORDER BY expression {expr!r}")

    # -- scalar expressions -----------------------------------------------------

    def _plan_expr(self, expr: A.SqlExpr, scope: Scope) -> Expression:
        if isinstance(expr, A.ColumnRef):
            return FieldRef(scope.resolve(expr))
        if isinstance(expr, A.NumberLit):
            return Literal(expr.value)
        if isinstance(expr, A.StringLit):
            return Literal(expr.value)
        if isinstance(expr, A.BoolLit):
            return Literal(expr.value)
        if isinstance(expr, A.DateLit):
            return Literal(datetime.date.fromisoformat(expr.value))
        if isinstance(expr, A.NullLit):
            return Literal(None)
        if isinstance(expr, A.IntervalLit):
            raise SqlPlanningError("bare INTERVAL outside date arithmetic")
        if isinstance(expr, A.BinaryOp):
            return self._plan_binary(expr, scope)
        if isinstance(expr, A.UnaryOp):
            if expr.op == "not":
                return ScalarCall("not", [self._plan_expr(expr.operand, scope)])
            operand = self._plan_expr(expr.operand, scope)
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return ScalarCall("negate", [operand])
        if isinstance(expr, A.BetweenExpr):
            inner = ScalarCall(
                "between",
                [
                    self._plan_expr(expr.operand, scope),
                    self._plan_expr(expr.low, scope),
                    self._plan_expr(expr.high, scope),
                ],
            )
            return ScalarCall("not", [inner]) if expr.negated else inner
        if isinstance(expr, A.LikeExpr):
            func = "not_like" if expr.negated else "like"
            options = {"escape": expr.escape} if expr.escape is not None else None
            return ScalarCall(
                func, [self._plan_expr(expr.operand, scope), Literal(expr.pattern)], options
            )
        if isinstance(expr, A.InExpr):
            if expr.subquery is not None:
                raise SqlPlanningError("IN subquery outside a top-level conjunct")
            func = "not_in" if expr.negated else "in"
            return ScalarCall(
                func,
                [self._plan_expr(expr.operand, scope)]
                + [self._plan_expr(v, scope) for v in expr.values],
            )
        if isinstance(expr, A.IsNullExpr):
            func = "is_not_null" if expr.negated else "is_null"
            return ScalarCall(func, [self._plan_expr(expr.operand, scope)])
        if isinstance(expr, A.CaseExpr):
            args = []
            for cond, result in expr.whens:
                args.append(self._plan_expr(cond, scope))
                args.append(self._plan_expr(result, scope))
            # Standard SQL: a missing ELSE branch yields NULL.
            if expr.default is None:
                args.append(Literal(None))
            else:
                args.append(self._plan_expr(expr.default, scope))
            return ScalarCall("case", args)
        if isinstance(expr, A.CastExpr):
            return ScalarCall(
                "cast", [self._plan_expr(expr.operand, scope)], {"to": expr.type_name}
            )
        if isinstance(expr, A.FuncCall):
            return self._plan_func(expr, scope)
        if isinstance(expr, (A.ExistsExpr, A.ScalarSubquery)):
            raise SqlPlanningError("subquery outside a top-level WHERE conjunct")
        if isinstance(expr, A.AggCall):
            raise SqlPlanningError("aggregate in a non-aggregate context")
        raise SqlPlanningError(f"unsupported expression {expr!r}")

    def _plan_binary(self, expr: A.BinaryOp, scope: Scope) -> Expression:
        # Interval arithmetic folds to date literals (TPC-H always applies
        # intervals to literal dates).
        if expr.op in ("+", "-") and isinstance(expr.right, A.IntervalLit):
            base = self._plan_expr(expr.left, scope)
            if isinstance(base, Literal) and isinstance(base.value, datetime.date):
                sign = 1 if expr.op == "+" else -1
                return Literal(_shift_date(base.value, expr.right, sign))
            func = "add" if expr.op == "+" else "subtract"
            if expr.right.unit != "day":
                raise SqlPlanningError("month/year intervals on columns are unsupported")
            return ScalarCall(func, [base, Literal(expr.right.amount)])
        if expr.op in ("and", "or"):
            return ScalarCall(
                expr.op, [self._plan_expr(expr.left, scope), self._plan_expr(expr.right, scope)]
            )
        if expr.op in _CMP_TO_FUNC:
            return ScalarCall(
                _CMP_TO_FUNC[expr.op],
                [self._plan_expr(expr.left, scope), self._plan_expr(expr.right, scope)],
            )
        func = {"+": "add", "-": "subtract", "*": "multiply", "/": "divide", "%": "modulo"}.get(
            expr.op
        )
        if func is None:
            raise SqlPlanningError(f"unsupported operator {expr.op!r}")
        left = self._plan_expr(expr.left, scope)
        right = self._plan_expr(expr.right, scope)
        folded = _fold_constants(func, left, right)
        return folded if folded is not None else ScalarCall(func, [left, right])

    def _plan_func(self, expr: A.FuncCall, scope: Scope, plan=None) -> Expression:
        # ``plan`` lets post-aggregate contexts reuse the same function
        # validation with their own sub-expression planner.
        if plan is None:
            plan = lambda e: self._plan_expr(e, scope)  # noqa: E731
        if expr.name == "extract":
            part = expr.extra["part"]
            if part not in ("year", "month", "day"):
                raise SqlPlanningError(f"EXTRACT({part}) is not supported")
            return ScalarCall(f"extract_{part}", [plan(expr.args[0])])
        if expr.name == "substring":
            arg = plan(expr.args[0])
            start = plan(expr.args[1])
            length = plan(expr.args[2])
            if not isinstance(start, Literal) or not isinstance(length, Literal):
                raise SqlPlanningError("substring bounds must be literals")
            return ScalarCall("substring", [arg, start, length])
        if expr.name == "coalesce":
            return ScalarCall("coalesce", [plan(a) for a in expr.args])
        if expr.name in ("upper", "lower", "length", "abs"):
            if len(expr.args) != 1:
                raise SqlPlanningError(f"{expr.name}() takes exactly one argument")
            return ScalarCall(expr.name, [plan(expr.args[0])])
        if expr.name == "round":
            if len(expr.args) not in (1, 2):
                raise SqlPlanningError("round() takes one or two arguments")
            args = [plan(expr.args[0])]
            if len(expr.args) == 2:
                digits = plan(expr.args[1])
                if not isinstance(digits, Literal) or not isinstance(digits.value, int):
                    raise SqlPlanningError("round() digits must be an integer literal")
                args.append(digits)
            return ScalarCall("round", args)
        if expr.name == "concat":
            if len(expr.args) < 2:
                raise SqlPlanningError("concat() takes at least two arguments")
            return ScalarCall("concat", [plan(a) for a in expr.args])
        raise SqlPlanningError(f"unsupported function {expr.name!r}")


# -- helpers --------------------------------------------------------------------


def _scope_columns(scope: Scope):
    return scope.columns


def _split_conjuncts(expr: Optional[A.SqlExpr]) -> list[A.SqlExpr]:
    if expr is None:
        return []
    if isinstance(expr, A.BinaryOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _factor_or(conj: A.SqlExpr) -> list[A.SqlExpr]:
    """Hoist conjuncts common to every branch of an OR (Q19's pattern).

    ``(p = l AND a) OR (p = l AND b)`` becomes ``p = l`` plus
    ``(a) OR (b)`` — without this, the shared join predicate stays trapped
    inside the OR and the join graph degenerates to a cross product.
    """
    if not (isinstance(conj, A.BinaryOp) and conj.op == "or"):
        return [conj]
    branches = _split_disjuncts(conj)
    branch_conjs = [_split_conjuncts(b) for b in branches]
    common_keys = set(_expr_key(c) for c in branch_conjs[0])
    for bc in branch_conjs[1:]:
        common_keys &= {_expr_key(c) for c in bc}
    if not common_keys:
        return [conj]
    hoisted = [c for c in branch_conjs[0] if _expr_key(c) in common_keys]
    remainders = []
    for bc in branch_conjs:
        rest = [c for c in bc if _expr_key(c) not in common_keys]
        if not rest:
            # One branch is fully covered by the hoisted conjuncts, so the
            # residual OR is a tautology: hoisted conjuncts alone suffice.
            return hoisted
        remainders.append(_conjoin(rest))
    out = list(hoisted)
    reduced = remainders[0]
    for r in remainders[1:]:
        reduced = A.BinaryOp("or", reduced, r)
    out.append(reduced)
    return out


def _split_disjuncts(expr: A.SqlExpr) -> list[A.SqlExpr]:
    if isinstance(expr, A.BinaryOp) and expr.op == "or":
        return _split_disjuncts(expr.left) + _split_disjuncts(expr.right)
    return [expr]


def _conjoin(conjuncts: list[A.SqlExpr]) -> Optional[A.SqlExpr]:
    if not conjuncts:
        return None
    out = conjuncts[0]
    for c in conjuncts[1:]:
        out = A.BinaryOp("and", out, c)
    return out


def _collect_column_refs(expr) -> list[A.ColumnRef]:
    refs: list[A.ColumnRef] = []

    def walk(node):
        if isinstance(node, A.ColumnRef):
            refs.append(node)
        elif isinstance(node, A.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, A.UnaryOp):
            walk(node.operand)
        elif isinstance(node, A.FuncCall):
            for a in node.args:
                walk(a)
        elif isinstance(node, A.AggCall):
            if node.arg is not None:
                walk(node.arg)
        elif isinstance(node, A.CaseExpr):
            for c, r in node.whens:
                walk(c)
                walk(r)
            if node.default is not None:
                walk(node.default)
        elif isinstance(node, A.CastExpr):
            walk(node.operand)
        elif isinstance(node, A.BetweenExpr):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, A.InExpr):
            walk(node.operand)
            for v in node.values or []:
                walk(v)
        elif isinstance(node, A.LikeExpr):
            walk(node.operand)
        elif isinstance(node, A.IsNullExpr):
            walk(node.operand)

    walk(expr)
    return refs


def _contains_subquery(expr) -> bool:
    if isinstance(expr, (A.ExistsExpr, A.ScalarSubquery)):
        return True
    if isinstance(expr, A.InExpr):
        return expr.subquery is not None
    if isinstance(expr, A.BinaryOp):
        return _contains_subquery(expr.left) or _contains_subquery(expr.right)
    if isinstance(expr, A.UnaryOp):
        return _contains_subquery(expr.operand)
    return False


def _collect_scalar_subqueries(expr) -> list[A.ScalarSubquery]:
    out = []
    if isinstance(expr, A.ScalarSubquery):
        out.append(expr)
    elif isinstance(expr, A.BinaryOp):
        out += _collect_scalar_subqueries(expr.left)
        out += _collect_scalar_subqueries(expr.right)
    elif isinstance(expr, A.UnaryOp):
        out += _collect_scalar_subqueries(expr.operand)
    return out


def _collect_agg_calls(expr) -> list[A.AggCall]:
    out: list[A.AggCall] = []

    def walk(node):
        if isinstance(node, A.AggCall):
            out.append(node)
            return  # no nested aggregates
        if isinstance(node, A.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, A.UnaryOp):
            walk(node.operand)
        elif isinstance(node, A.FuncCall):
            for a in node.args:
                walk(a)
        elif isinstance(node, A.CaseExpr):
            for c, r in node.whens:
                walk(c)
                walk(r)
            if node.default is not None:
                walk(node.default)
        elif isinstance(node, A.CastExpr):
            walk(node.operand)

    walk(expr)
    return out


def _contains_aggregate(stmt: A.SelectStmt) -> bool:
    for item in stmt.items:
        if not isinstance(item.expr, A.Star) and _collect_agg_calls(item.expr):
            return True
    if stmt.having is not None and _collect_agg_calls(stmt.having):
        return True
    return False


def _single_ref(expr) -> Optional[A.ColumnRef]:
    return expr if isinstance(expr, A.ColumnRef) else None


def _expr_key(expr) -> str:
    """A structural key for AST equality (group-by matching)."""
    if expr is None:
        return "none"
    if isinstance(expr, A.ColumnRef):
        # Qualifier-sensitive: self-joins (Q7's nation n1/n2) make the same
        # column name mean different things.
        return f"col:{expr.qualifier}.{expr.name}" if expr.qualifier else f"col:{expr.name}"
    if isinstance(expr, A.NumberLit):
        return f"num:{expr.value}"
    if isinstance(expr, A.StringLit):
        return f"str:{expr.value}"
    if isinstance(expr, A.DateLit):
        return f"date:{expr.value}"
    if isinstance(expr, A.BinaryOp):
        return f"({_expr_key(expr.left)}{expr.op}{_expr_key(expr.right)})"
    if isinstance(expr, A.UnaryOp):
        return f"{expr.op}({_expr_key(expr.operand)})"
    if isinstance(expr, A.FuncCall):
        inner = ",".join(_expr_key(a) for a in expr.args)
        return f"{expr.name}[{expr.extra}]({inner})"
    if isinstance(expr, A.AggCall):
        return f"agg:{expr.func}:{expr.distinct}:{_expr_key(expr.arg)}"
    if isinstance(expr, A.CaseExpr):
        whens = ";".join(f"{_expr_key(c)}->{_expr_key(r)}" for c, r in expr.whens)
        return f"case({whens};{_expr_key(expr.default)})"
    if isinstance(expr, A.CastExpr):
        return f"cast({_expr_key(expr.operand)} as {expr.type_name})"
    if isinstance(expr, A.BetweenExpr):
        return f"between({_expr_key(expr.operand)},{_expr_key(expr.low)},{_expr_key(expr.high)},{expr.negated})"
    if isinstance(expr, A.LikeExpr):
        return f"like({_expr_key(expr.operand)},{expr.pattern},{expr.negated},{expr.escape})"
    if isinstance(expr, A.InExpr):
        vals = ",".join(_expr_key(v) for v in expr.values or [])
        return f"in({_expr_key(expr.operand)},[{vals}],{expr.negated})"
    return repr(expr)


def _item_name(item: A.SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, A.ColumnRef):
        return item.expr.name
    return f"col{position}"


def _dedupe(names: list[str]) -> list[str]:
    seen: set[str] = set()
    out = []
    for n in names:
        candidate = n
        suffix = 1
        while candidate in seen:
            candidate = f"{n}#{suffix}"
            suffix += 1
        seen.add(candidate)
        out.append(candidate)
    return out


def _merged_scope_columns(left, right):
    return list(left) + list(right)


def _estimate_join(left_rows: float, right_rows: float, has_keys: bool) -> float:
    if not has_keys:
        return left_rows * right_rows
    return max(left_rows, right_rows)


def _estimate_rows(rel: Relation, catalog) -> float:
    if isinstance(rel, ReadRel):
        stats = catalog.get(rel.table_name)
        return float(stats.row_count) if stats else 1000.0
    if isinstance(rel, FilterRel):
        return _estimate_rows(rel.input_rel, catalog) * _FILTER_SELECTIVITY
    if isinstance(rel, (ProjectRel, SortRel)):
        return _estimate_rows(rel.inputs[0], catalog)
    if isinstance(rel, AggregateRel):
        return max(_estimate_rows(rel.input_rel, catalog) * 0.1, 1.0)
    if isinstance(rel, FetchRel):
        base = _estimate_rows(rel.input_rel, catalog)
        return min(base, rel.count) if rel.count is not None else base
    if isinstance(rel, JoinRel):
        return _estimate_join(
            _estimate_rows(rel.left, catalog),
            _estimate_rows(rel.right, catalog),
            bool(rel.left_keys),
        )
    return 1000.0


def _fold_constants(func: str, left: Expression, right: Expression) -> Optional[Expression]:
    """Fold numeric literal arithmetic (1 - l_discount stays unfolded)."""
    if not (isinstance(left, Literal) and isinstance(right, Literal)):
        return None
    lv, rv = left.value, right.value
    if not isinstance(lv, (int, float)) or not isinstance(rv, (int, float)):
        return None
    if func == "add":
        return Literal(lv + rv)
    if func == "subtract":
        return Literal(lv - rv)
    if func == "multiply":
        return Literal(lv * rv)
    if func == "divide" and rv != 0:
        return Literal(lv / rv)
    return None


def _shift_date(base: datetime.date, interval: A.IntervalLit, sign: int) -> datetime.date:
    amount = interval.amount * sign
    if interval.unit == "day":
        return base + datetime.timedelta(days=amount)
    if interval.unit == "month":
        total = base.year * 12 + (base.month - 1) + amount
        year, month = divmod(total, 12)
        day = min(base.day, _days_in_month(year, month + 1))
        return datetime.date(year, month + 1, day)
    # year
    try:
        return base.replace(year=base.year + amount)
    except ValueError:  # Feb 29
        return base.replace(year=base.year + amount, day=28)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    return (datetime.date(year, month + 1, 1) - datetime.timedelta(days=1)).day
