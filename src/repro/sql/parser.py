"""Recursive-descent SQL parser covering the TPC-H dialect.

Grammar (simplified)::

    stmt        := [WITH name AS (select) [, ...]] select
    select      := SELECT [DISTINCT] items FROM from_clause
                   [WHERE expr] [GROUP BY exprs] [HAVING expr]
                   [ORDER BY order_items] [LIMIT n]
    from_clause := from_item ([,] from_item | join_clause)*
    join_clause := [INNER | LEFT [OUTER] | CROSS] JOIN from_item [ON expr]
    expr        := or-expression with the usual precedence ladder:
                   OR < AND < NOT < comparison/IN/LIKE/BETWEEN/IS < +- < */%
    primary     := literal | date/interval literal | case | cast | func |
                   aggregate | column | (expr) | (select) | EXISTS (select)
"""

from __future__ import annotations

from .ast_nodes import (
    AggCall,
    BetweenExpr,
    BinaryOp,
    BoolLit,
    CaseExpr,
    CastExpr,
    ColumnRef,
    DateLit,
    ExistsExpr,
    FuncCall,
    InExpr,
    IntervalLit,
    IsNullExpr,
    JoinClause,
    LikeExpr,
    NullLit,
    NumberLit,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStmt,
    Star,
    StringLit,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from .lexer import SqlSyntaxError, Token, tokenize

__all__ = ["parse_sql", "SqlSyntaxError"]

_AGG_FUNCS = frozenset({"sum", "min", "max", "avg", "count"})
_CMP_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})


def parse_sql(sql: str) -> SelectStmt:
    """Parse one SELECT statement (with optional CTEs)."""
    parser = _Parser(tokenize(sql))
    stmt = parser.parse_statement()
    parser.expect_end()
    return stmt


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def accept_kw(self, *words: str) -> bool:
        if self.peek().is_kw(*words):
            self.next()
            return True
        return False

    def expect_kw(self, word: str) -> None:
        tok = self.next()
        if not tok.is_kw(word):
            raise SqlSyntaxError(f"expected {word.upper()} at {tok.pos}, got {tok.value!r}")

    def accept_op(self, op: str) -> bool:
        if self.peek().kind == "op" and self.peek().value == op:
            self.next()
            return True
        return False

    def expect_op(self, op: str) -> None:
        tok = self.next()
        if tok.kind != "op" or tok.value != op:
            raise SqlSyntaxError(f"expected {op!r} at {tok.pos}, got {tok.value!r}")

    def expect_ident(self) -> str:
        tok = self.next()
        if tok.kind != "ident":
            raise SqlSyntaxError(f"expected identifier at {tok.pos}, got {tok.value!r}")
        return tok.value

    def expect_end(self) -> None:
        self.accept_op(";")
        tok = self.peek()
        if tok.kind != "eof":
            raise SqlSyntaxError(f"unexpected trailing input at {tok.pos}: {tok.value!r}")

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> SelectStmt:
        ctes: dict[str, SelectStmt] = {}
        if self.accept_kw("with"):
            while True:
                name = self.expect_ident()
                self.expect_kw("as")
                self.expect_op("(")
                ctes[name] = self.parse_select()
                self.expect_op(")")
                if not self.accept_op(","):
                    break
        stmt = self.parse_select()
        stmt.ctes = ctes
        return stmt

    def parse_select(self) -> SelectStmt:
        self.expect_kw("select")
        stmt = SelectStmt()
        stmt.distinct = self.accept_kw("distinct")
        stmt.items = self._select_items()
        if self.accept_kw("from"):
            self._from_clause(stmt)
        if self.accept_kw("where"):
            stmt.where = self.parse_expr()
        if self.accept_kw("group"):
            self.expect_kw("by")
            stmt.group_by.append(self.parse_expr())
            while self.accept_op(","):
                stmt.group_by.append(self.parse_expr())
        if self.accept_kw("having"):
            stmt.having = self.parse_expr()
        if self.accept_kw("order"):
            self.expect_kw("by")
            stmt.order_by.append(self._order_item())
            while self.accept_op(","):
                stmt.order_by.append(self._order_item())
        if self.accept_kw("limit"):
            tok = self.next()
            if tok.kind != "number":
                raise SqlSyntaxError(f"LIMIT expects a number at {tok.pos}")
            stmt.limit = int(tok.value)
        if self.accept_kw("offset"):
            tok = self.next()
            if tok.kind != "number":
                raise SqlSyntaxError(f"OFFSET expects a number at {tok.pos}")
            stmt.offset = int(tok.value)
        return stmt

    def _select_items(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        if self.peek().kind == "op" and self.peek().value == "*":
            self.next()
            return SelectItem(Star())
        if (
            self.peek().kind == "ident"
            and self.peek(1).kind == "op"
            and self.peek(1).value == "."
            and self.peek(2).kind == "op"
            and self.peek(2).value == "*"
        ):
            qualifier = self.expect_ident()
            self.expect_op(".")
            self.expect_op("*")
            return SelectItem(Star(qualifier))
        expr = self.parse_expr()
        alias = None
        if self.accept_kw("as"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.expect_ident()
        return SelectItem(expr, alias)

    def _order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_kw("desc"):
            ascending = False
        else:
            self.accept_kw("asc")
        return OrderItem(expr, ascending)

    # -- FROM -----------------------------------------------------------------

    def _from_clause(self, stmt: SelectStmt) -> None:
        stmt.from_tables.append(self._from_item())
        while True:
            if self.accept_op(","):
                stmt.from_tables.append(self._from_item())
                continue
            kind = None
            if self.accept_kw("inner"):
                kind = "inner"
            elif self.accept_kw("left"):
                self.accept_kw("outer")
                kind = "left"
            elif self.accept_kw("cross"):
                kind = "cross"
            if kind is None and self.peek().is_kw("join"):
                kind = "inner"
            if kind is None:
                return
            self.expect_kw("join")
            right = self._from_item()
            condition = None
            if self.accept_kw("on"):
                condition = self.parse_expr()
            stmt.joins.append(JoinClause(kind, right, condition))

    def _from_item(self):
        if self.peek().kind == "op" and self.peek().value == "(":
            self.next()
            sub = self.parse_select()
            self.expect_op(")")
            self.accept_kw("as")
            alias = self.expect_ident()
            return SubqueryRef(sub, alias)
        name = self.expect_ident()
        alias = None
        if self.accept_kw("as"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.expect_ident()
        return TableRef(name, alias)

    # -- expressions (precedence climbing) ---------------------------------------

    def parse_expr(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.accept_kw("or"):
            left = BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.accept_kw("and"):
            left = BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self):
        if self.accept_kw("not"):
            return UnaryOp("not", self._not_expr())
        return self._predicate()

    def _predicate(self):
        left = self._additive()
        tok = self.peek()

        if tok.kind == "op" and tok.value in _CMP_OPS:
            op = self.next().value
            if op == "!=":
                op = "<>"
            # ANY/ALL subqueries are not in TPC-H; plain comparisons only.
            right = self._additive()
            return BinaryOp(op, left, right)

        negated = False
        if tok.is_kw("not"):
            nxt = self.peek(1)
            if nxt.is_kw("in", "like", "between"):
                self.next()
                negated = True
                tok = self.peek()

        if tok.is_kw("between"):
            self.next()
            low = self._additive()
            self.expect_kw("and")
            high = self._additive()
            return BetweenExpr(left, low, high, negated)

        if tok.is_kw("like"):
            self.next()
            pat = self.next()
            if pat.kind != "string":
                raise SqlSyntaxError(f"LIKE expects a string pattern at {pat.pos}")
            escape = None
            if self.accept_kw("escape"):
                esc = self.next()
                if esc.kind != "string" or len(esc.value) != 1:
                    raise SqlSyntaxError(
                        f"ESCAPE expects a single-character string at {esc.pos}"
                    )
                escape = esc.value
            return LikeExpr(left, pat.value, negated, escape)

        if tok.is_kw("in"):
            self.next()
            self.expect_op("(")
            if self.peek().is_kw("select"):
                sub = self.parse_select()
                self.expect_op(")")
                return InExpr(left, subquery=sub, negated=negated)
            values = [self.parse_expr()]
            while self.accept_op(","):
                values.append(self.parse_expr())
            self.expect_op(")")
            return InExpr(left, values=values, negated=negated)

        if tok.is_kw("is"):
            self.next()
            neg = self.accept_kw("not")
            self.expect_kw("null")
            return IsNullExpr(left, neg)

        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.value in ("+", "-"):
                op = "+" if self.next().value == "+" else "-"
                left = BinaryOp(op, left, self._multiplicative())
            elif tok.kind == "op" and tok.value == "||":
                self.next()
                left = FuncCall("concat", [left, self._multiplicative()])
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.value in ("*", "/", "%"):
                op = self.next().value
                left = BinaryOp(op, left, self._unary())
            else:
                return left

    def _unary(self):
        if self.peek().kind == "op" and self.peek().value == "-":
            self.next()
            return UnaryOp("-", self._unary())
        if self.peek().kind == "op" and self.peek().value == "+":
            self.next()
            return self._unary()
        return self._primary()

    def _primary(self):
        tok = self.peek()

        if tok.kind == "number":
            self.next()
            text = tok.value
            return NumberLit(float(text) if "." in text else int(text))
        if tok.kind == "string":
            self.next()
            return StringLit(tok.value)
        if tok.is_kw("true"):
            self.next()
            return BoolLit(True)
        if tok.is_kw("false"):
            self.next()
            return BoolLit(False)
        if tok.is_kw("null"):
            self.next()
            return NullLit()

        if tok.is_kw("date"):
            self.next()
            lit = self.next()
            if lit.kind != "string":
                raise SqlSyntaxError(f"DATE expects a string at {lit.pos}")
            return DateLit(lit.value)

        if tok.is_kw("interval"):
            self.next()
            amount = self.next()
            if amount.kind != "string" and amount.kind != "number":
                raise SqlSyntaxError(f"INTERVAL expects an amount at {amount.pos}")
            unit_tok = self.next()
            unit = unit_tok.value.rstrip("s")
            if unit not in ("day", "month", "year"):
                raise SqlSyntaxError(f"unsupported interval unit {unit_tok.value!r}")
            return IntervalLit(int(float(amount.value)), unit)

        if tok.is_kw("case"):
            return self._case_expr()

        if tok.is_kw("cast"):
            self.next()
            self.expect_op("(")
            operand = self.parse_expr()
            self.expect_kw("as")
            type_name = self.next().value
            # decimal(15,2) style precision arguments are ignored.
            if self.accept_op("("):
                while not self.accept_op(")"):
                    self.next()
            self.expect_op(")")
            return CastExpr(operand, type_name)

        if tok.is_kw("exists"):
            self.next()
            self.expect_op("(")
            sub = self.parse_select()
            self.expect_op(")")
            return ExistsExpr(sub)

        if tok.is_kw("extract"):
            self.next()
            self.expect_op("(")
            part = self.next().value  # year / month / day keywords
            self.expect_kw("from")
            arg = self.parse_expr()
            self.expect_op(")")
            return FuncCall("extract", [arg], {"part": part})

        if tok.is_kw("substring"):
            self.next()
            self.expect_op("(")
            arg = self.parse_expr()
            if self.accept_kw("from"):
                start = self.parse_expr()
                self.expect_kw("for")
            else:
                self.expect_op(",")
                start = self.parse_expr()
                self.expect_op(",")
            length = self.parse_expr()
            self.expect_op(")")
            return FuncCall("substring", [arg, start, length])

        if tok.is_kw(*_AGG_FUNCS):
            func = self.next().value
            self.expect_op("(")
            distinct = self.accept_kw("distinct")
            if self.peek().kind == "op" and self.peek().value == "*":
                self.next()
                arg = None
            else:
                arg = self.parse_expr()
            self.expect_op(")")
            return AggCall(func, arg, distinct)

        if tok.is_kw("coalesce"):
            self.next()
            self.expect_op("(")
            args = [self.parse_expr()]
            while self.accept_op(","):
                args.append(self.parse_expr())
            self.expect_op(")")
            return FuncCall("coalesce", args)

        if tok.kind == "op" and tok.value == "(":
            self.next()
            if self.peek().is_kw("select"):
                sub = self.parse_select()
                self.expect_op(")")
                return ScalarSubquery(sub)
            inner = self.parse_expr()
            self.expect_op(")")
            return inner

        if tok.kind == "ident":
            name = self.expect_ident()
            if self.peek().kind == "op" and self.peek().value == "(":
                # Generic scalar function call; the planner validates names.
                self.next()
                args: list = []
                if not (self.peek().kind == "op" and self.peek().value == ")"):
                    args.append(self.parse_expr())
                    while self.accept_op(","):
                        args.append(self.parse_expr())
                self.expect_op(")")
                return FuncCall(name, args)
            if self.accept_op("."):
                column = self.expect_ident()
                return ColumnRef(column, qualifier=name)
            return ColumnRef(name)

        raise SqlSyntaxError(f"unexpected token {tok.value!r} at {tok.pos}")

    def _case_expr(self):
        self.expect_kw("case")
        whens: list[tuple] = []
        while self.accept_kw("when"):
            cond = self.parse_expr()
            self.expect_kw("then")
            result = self.parse_expr()
            whens.append((cond, result))
        default = None
        if self.accept_kw("else"):
            default = self.parse_expr()
        self.expect_kw("end")
        if not whens:
            raise SqlSyntaxError("CASE requires at least one WHEN")
        return CaseExpr(whens, default)
