"""The simulated execution device.

A :class:`Device` bundles everything the engine needs from "a GPU":

* a :class:`~repro.gpu.clock.SimClock` that kernel launches and transfers
  advance;
* a **caching region** (plain byte accounting — Sirius pre-allocates it and
  fills it with cached input columns);
* a **processing region** managed by an RMM-style
  :class:`~repro.gpu.rmm.PoolAllocator` for intermediates;
* the :class:`~repro.gpu.costmodel.KernelCostModel` for that device's spec;
* host-interconnect transfer charging (PCIe / NVLink-C2C).

CPU devices use the same machinery with CPU-calibrated specs, which is how
the cost-normalised baselines of Figure 4 are produced.

The memory split follows the paper's evaluation setup: *"We dedicate 50% of
each GPU memory for data caching, and the other half for data processing."*
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..obs import NULL_TRACER
from .buffer import DeviceBuffer
from .clock import SimClock
from .costmodel import CostBreakdown, KernelCostModel
from .memory import DeviceMemory, OutOfDeviceMemory
from .rmm import Allocation, PoolAllocator
from .specs import GB, DeviceSpec

__all__ = ["Device", "FusedKernelScope", "OutOfDeviceMemory", "TransientKernelError"]

# A transient kernel fault is relaunched this many times before it is
# treated as permanent and surfaced to the fallback machinery.
KERNEL_RELAUNCH_LIMIT = 3


class TransientKernelError(RuntimeError):
    """A kernel launch kept failing past the relaunch limit.

    Individual transient faults (the ECC-hiccup / driver-retry class) are
    absorbed by relaunching — each wasted attempt still charges the
    simulated clock — so only a *persistently* failing kernel raises."""


class FusedKernelScope:
    """Open recording scope for one fused-kernel region.

    While active, :meth:`Device.launch` records each constituent kernel
    here instead of charging the clock; the scope owner declares the
    region's external traffic via :meth:`external` and, on clean exit,
    the device charges one fused launch for the whole run (see
    :meth:`KernelCostModel.fused_cost`).  Suppressed launches still
    return their standalone :class:`CostBreakdown` so kernel-internal
    callers observe the usual interface.
    """

    __slots__ = ("cost_model", "parts", "ext_in", "ext_out")

    def __init__(self, cost_model: KernelCostModel):
        self.cost_model = cost_model
        self.parts: list[tuple[str, int, int, int, int | None]] = []
        self.ext_in = 0
        self.ext_out = 0

    def record(
        self,
        kclass: str,
        bytes_in: int,
        bytes_out: int,
        rows: int,
        num_groups: int | None = None,
    ) -> CostBreakdown:
        self.parts.append((kclass, int(bytes_in), int(bytes_out), int(rows), num_groups))
        return self.cost_model.kernel_cost(kclass, bytes_in, bytes_out, rows, num_groups)

    def external(self, bytes_in: int, bytes_out: int) -> None:
        """Declare the bytes the fused region reads/writes from HBM."""
        self.ext_in = int(bytes_in)
        self.ext_out = int(bytes_out)

    @property
    def interior_bytes(self) -> int:
        """Total traffic the constituent kernels would have materialised."""
        return sum(p[1] + p[2] for p in self.parts)


class Device:
    """One simulated CPU or GPU execution device."""

    def __init__(
        self,
        spec: DeviceSpec,
        clock: SimClock | None = None,
        caching_fraction: float = 0.5,
        memory_limit_gb: float | None = None,
        device_id: int = 0,
    ):
        """
        Args:
            spec: Hardware parameters (see :mod:`repro.gpu.specs`).
            clock: Shared simulated clock; a private one is created if
                omitted (single-device runs).
            caching_fraction: Fraction of device memory given to the data
                caching region; the rest becomes the processing pool.
            memory_limit_gb: Override the spec's memory size (useful for
                forcing OOM/spill paths in tests).
            device_id: Identifier within a node (multi-GPU extension).
        """
        if not 0.0 < caching_fraction < 1.0:
            raise ValueError("caching_fraction must be in (0, 1)")
        self.spec = spec
        self.device_id = device_id
        self.clock = clock if clock is not None else SimClock()
        self.cost_model = KernelCostModel(spec)
        total = int((memory_limit_gb if memory_limit_gb is not None else spec.memory_gb) * GB)
        cache_bytes = int(total * caching_fraction)
        self.caching_region = DeviceMemory(cache_bytes, region="caching")
        self.processing_pool = PoolAllocator(total - cache_bytes)
        self.kernel_count = 0
        self.htod_bytes = 0
        self.dtoh_bytes = 0
        self.disk_write_bytes = 0
        self.disk_read_bytes = 0
        # Fault-injection hooks (attached by repro.faults.FaultInjector;
        # None = healthy device, zero overhead on the hot path).
        self.fault_injector = None
        self.fault_rank = device_id
        self.kernel_relaunches = 0
        # Pipeline fusion: while a FusedKernelScope is open, launches are
        # recorded instead of charged (None = normal per-kernel charging).
        self._fused_scope = None
        self.fused_kernel_count = 0
        self.fusion_saved_bytes = 0
        # Multi-query serving: the scheduler tags the query whose task is
        # currently stepping so processing-pool allocations carry an owner
        # (per-query reclamation) and cached tables record their last user
        # (contention-aware spill).  None = single-query mode, zero change.
        self.query_owner = None
        # Observability sink (swapped for a real Tracer by the engine that
        # owns this device; the null default records nothing).
        self.tracer = NULL_TRACER

    # -- sanitizer wiring -------------------------------------------------------

    def attach_sanitizer(self, sanitizer) -> None:
        """Wire a :class:`~repro.analysis.sanitizers.Sanitizer` into this
        device's clock (happens-before graph) and processing pool (shadow
        ledger).  Detached devices carry ``None`` hooks and pay nothing."""
        self.clock.sanitizer = sanitizer
        self.processing_pool.sanitizer = sanitizer

    def detach_sanitizer(self) -> None:
        self.clock.sanitizer = None
        self.processing_pool.sanitizer = None

    # -- kernel execution -----------------------------------------------------

    def launch(
        self,
        kclass: str,
        bytes_in: int,
        bytes_out: int,
        rows: int,
        num_groups: int | None = None,
    ) -> CostBreakdown:
        """Charge one kernel launch to the simulated clock and return its
        cost breakdown.  The caller performs the actual NumPy work.

        Inside an open :meth:`fused_kernel` scope the launch is recorded
        instead of charged — the whole fused region bills once on exit.
        """
        scope = self._fused_scope
        if scope is not None:
            return scope.record(kclass, bytes_in, bytes_out, rows, num_groups)
        cost = self.cost_model.kernel_cost(kclass, bytes_in, bytes_out, rows, num_groups)
        return self._charge_launch(kclass, cost)

    def _charge_launch(self, kclass: str, cost: CostBreakdown) -> CostBreakdown:
        seconds = cost.total
        injector = self.fault_injector
        if injector is not None:
            seconds *= injector.compute_slowdown(self.fault_rank, self.clock.now)
            relaunches = 0
            while injector.take_kernel_fault(self.fault_rank, self.clock.now):
                # The failed attempt ran (and is paid for) before the
                # error surfaced; the relaunch is charged below.
                self.clock.advance(seconds)
                self.kernel_count += 1
                self.kernel_relaunches += 1
                relaunches += 1
                self.tracer.event(
                    "kernel-relaunch",
                    sim_time=self.clock.now,
                    kclass=kclass,
                    rank=self.fault_rank,
                    attempt=relaunches,
                )
                if relaunches >= KERNEL_RELAUNCH_LIMIT:
                    raise TransientKernelError(
                        f"kernel {kclass} failed {relaunches} consecutive "
                        f"relaunches on rank {self.fault_rank}"
                    )
        self.clock.advance(seconds)
        self.kernel_count += 1
        return cost

    @contextmanager
    def fused_kernel(self):
        """Fuse every :meth:`launch` inside the ``with`` block into one
        charged kernel.  The caller must declare the region's external
        traffic via :meth:`FusedKernelScope.external`; on a clean exit
        the fused cost is charged (fault injection included) and the
        saved interior traffic is accumulated in ``fusion_saved_bytes``.
        On an exception nothing is charged — the degradation machinery
        re-runs the pipeline from scratch.  Nested scopes collapse into
        the outermost one.
        """
        if self._fused_scope is not None:
            yield self._fused_scope
            return
        scope = FusedKernelScope(self.cost_model)
        self._fused_scope = scope
        try:
            yield scope
        except BaseException:
            self._fused_scope = None
            raise
        self._fused_scope = None
        if not scope.parts:
            return
        cost = self.cost_model.fused_cost(scope.parts, scope.ext_in, scope.ext_out)
        self._charge_launch("fused", cost)
        self.fused_kernel_count += 1
        saved = scope.interior_bytes - (scope.ext_in + scope.ext_out)
        self.fusion_saved_bytes += max(saved, 0)

    # -- transfers ---------------------------------------------------------------

    def htod(self, nbytes: int, pinned: bool = False) -> float:
        """Charge a host-to-device transfer; returns the simulated seconds.

        ``pinned`` prices the copy at the page-locked host-memory rate
        (§3.4 spill traffic); identical to pageable at the default spec.
        """
        seconds = self.cost_model.transfer_cost(nbytes, pinned=pinned)
        self.clock.advance(seconds, category="transfer")
        self.htod_bytes += nbytes
        return seconds

    def dtoh(self, nbytes: int, pinned: bool = False) -> float:
        """Charge a device-to-host transfer; returns the simulated seconds."""
        seconds = self.cost_model.transfer_cost(nbytes, pinned=pinned)
        self.clock.advance(seconds, category="transfer")
        self.dtoh_bytes += nbytes
        return seconds

    def disk_write(self, nbytes: int) -> float:
        """Charge a pinned-host -> simulated-disk write (out-of-core
        partition demotion once the pinned-host budget overflows)."""
        seconds = self.cost_model.disk_transfer_cost(nbytes)
        self.clock.advance(seconds, category="transfer")
        self.disk_write_bytes += nbytes
        return seconds

    def disk_read(self, nbytes: int) -> float:
        """Charge a simulated-disk -> pinned-host read (partition
        promotion on first re-use after a disk demotion)."""
        seconds = self.cost_model.disk_transfer_cost(nbytes)
        self.clock.advance(seconds, category="transfer")
        self.disk_read_bytes += nbytes
        return seconds

    # -- asynchronous copies (the CUDA copy-stream analogue) -------------------

    @property
    def copy_stream(self):
        """The device's dedicated copy stream (created on first use)."""
        return self.clock.stream("copy")

    def htod_async(self, nbytes: int, pinned: bool = False) -> float:
        """Issue a host-to-device copy on the copy stream.

        Returns the copy's completion timestamp (a stream event) without
        advancing the host clock; callers synchronise later through
        :meth:`wait_copies`, exposing only the un-overlapped remainder.
        """
        seconds = self.cost_model.transfer_cost(nbytes, pinned=pinned)
        start, end = self.copy_stream.issue(seconds)
        self.htod_bytes += nbytes
        if self.tracer.enabled:
            self.tracer.record_span(
                "htod.async", "stream", start=start, end=end,
                bytes=nbytes, stream="copy",
            )
        return end

    def dtoh_async(self, nbytes: int, pinned: bool = False) -> float:
        """Issue a device-to-host copy on the copy stream; see
        :meth:`htod_async`."""
        seconds = self.cost_model.transfer_cost(nbytes, pinned=pinned)
        start, end = self.copy_stream.issue(seconds)
        self.dtoh_bytes += nbytes
        if self.tracer.enabled:
            self.tracer.record_span(
                "dtoh.async", "stream", start=start, end=end,
                bytes=nbytes, stream="copy",
            )
        return end

    def wait_copies(self, until: float | None = None) -> float:
        """Join the copy stream (CUDA event wait): advance the host clock
        to ``until`` (default: the stream frontier) and return the exposed
        wait seconds, attributed to ``"transfer-wait"``."""
        return self.copy_stream.wait(until, category="transfer-wait")

    # -- buffers ---------------------------------------------------------------

    def new_buffer(
        self,
        array: np.ndarray,
        region: str = "processing",
        account_nbytes: int | None = None,
    ) -> DeviceBuffer:
        """Place ``array`` on the device, accounting its bytes to ``region``.

        ``account_nbytes`` overrides the accounted size (used by the
        caching region's compression extension, where the stored footprint
        is smaller than the logical array).

        Raises:
            OutOfDeviceMemory: When the region cannot hold the bytes.
        """
        array = np.ascontiguousarray(array)
        size = int(array.nbytes) if account_nbytes is None else int(account_nbytes)
        injector = self.fault_injector
        if (
            injector is not None
            and region == "processing"
            and injector.has_pool_pressure
        ):
            # A memory-pressure window shrinks the pool's soft limit for
            # its duration; allocations past the shrunken limit walk the
            # allocator's pressure-callback path (spill, then retry)
            # before OOM surfaces.
            factor = injector.pool_pressure_factor(self.fault_rank, self.clock.now)
            self.processing_pool.soft_limit = (
                int(self.processing_pool.capacity * factor) if factor < 1.0 else None
            )
        if self.fault_injector is not None and self.fault_injector.take_oom(
            self.fault_rank, self.clock.now
        ):
            available = (
                self.processing_pool.stats().capacity - self.processing_pool.stats().in_use
                if region == "processing"
                else self.caching_region.available
            )
            raise OutOfDeviceMemory(size, available, f"{region} (injected spike)")
        if region == "processing":
            allocation = self.processing_pool.allocate(size, owner=self.query_owner)
            self.tracer.count("device.alloc_bytes", size)
            self.tracer.gauge("device.pool_in_use", self.processing_pool.in_use)
            return DeviceBuffer(array, self, region, allocation, size)
        if region == "caching":
            self.caching_region.allocate(size)
            self.tracer.count("device.cache_bytes", size)
            self.tracer.gauge("device.cache_in_use", self.caching_region.used)
            return DeviceBuffer(array, self, region, None, size)
        raise ValueError(f"unknown memory region {region!r}")

    def release_buffer(self, buffer: DeviceBuffer, allocation: Allocation | None) -> None:
        """Called by :meth:`DeviceBuffer.free`; not for direct use."""
        if buffer.region == "processing":
            if allocation is not None:
                self.processing_pool.free(allocation)
        else:
            self.caching_region.free(buffer.nbytes)

    def reset_processing_pool(self) -> None:
        """Recycle the RMM pool between queries (all intermediates freed)."""
        self.processing_pool.reset()

    # -- introspection --------------------------------------------------------

    @property
    def is_gpu(self) -> bool:
        return self.spec.kind == "gpu"

    def memory_report(self) -> dict[str, int]:
        """Snapshot of both regions for diagnostics and tests."""
        pool = self.processing_pool.stats()
        return {
            "caching_capacity": self.caching_region.capacity,
            "caching_used": self.caching_region.used,
            "caching_peak": self.caching_region.peak,
            "processing_capacity": pool.capacity,
            "processing_used": pool.in_use,
            "processing_peak": pool.peak_in_use,
        }

    def __repr__(self) -> str:
        return f"Device({self.spec.name}, id={self.device_id})"
