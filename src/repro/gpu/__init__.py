"""Simulated GPU substrate: devices, memory, cost model, and collectives."""

from .buffer import DeviceBuffer
from .clock import SimClock
from .costmodel import CostBreakdown, KernelClass, KernelCostModel
from .device import Device, TransientKernelError
from .memory import DeviceMemory, OutOfDeviceMemory
from .nccl import (
    Communicator,
    Fabric,
    INFINIBAND_NDR,
    ETHERNET_100G,
    LinkDroppedError,
    NVLINK_P2P,
)
from .rmm import Allocation, PoolAllocator, PoolStats
from .specs import (
    A100_40G,
    C6A_METAL,
    DeviceSpec,
    GH200,
    GRACE_CPU,
    H100_80G,
    InstanceSpec,
    M7I_16XLARGE,
    M7I_CPU,
    TABLE1_INSTANCES,
    TRENDS,
    XEON_6526Y,
    trend_cagr,
)

__all__ = [
    "A100_40G",
    "Allocation",
    "C6A_METAL",
    "Communicator",
    "CostBreakdown",
    "Device",
    "DeviceBuffer",
    "DeviceMemory",
    "DeviceSpec",
    "ETHERNET_100G",
    "Fabric",
    "GH200",
    "GRACE_CPU",
    "H100_80G",
    "INFINIBAND_NDR",
    "InstanceSpec",
    "KernelClass",
    "KernelCostModel",
    "LinkDroppedError",
    "M7I_16XLARGE",
    "M7I_CPU",
    "NVLINK_P2P",
    "OutOfDeviceMemory",
    "PoolAllocator",
    "PoolStats",
    "SimClock",
    "TABLE1_INSTANCES",
    "TRENDS",
    "TransientKernelError",
    "XEON_6526Y",
    "trend_cagr",
]
