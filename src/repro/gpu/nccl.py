"""NCCL-style collectives over a simulated fabric.

The paper's exchange service layer implements broadcast, shuffle, merge and
multi-cast on NCCL primitives running over PCIe / NVLink / InfiniBand.
Here, each participating device keeps its *own* simulated clock (nodes
compute in parallel); a collective is a synchronisation point:

1. every rank "arrives" at its local time;
2. the collective completes at ``max(arrival) + comm_time``;
3. every rank's clock is advanced to the completion time, with the waiting
   + wire time attributed to the ``"exchange"`` bucket.

``comm_time`` follows the standard alpha-beta model: per-message latency
(alpha) plus bytes over per-link bandwidth (beta), with the bottleneck rank
(max bytes in or out) setting the pace for all-to-all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..obs import NULL_TRACER
from .clock import SimClock

__all__ = [
    "Fabric",
    "Communicator",
    "LinkDroppedError",
    "INFINIBAND_NDR",
    "ETHERNET_100G",
    "NVLINK_P2P",
]


class LinkDroppedError(ConnectionError):
    """A collective failed because a link dropped mid-operation.

    This is the *transient* NCCL failure class: the caller (the exchange
    layer) is expected to retry with backoff; the failed handshake's
    latency has already been charged to every participating clock."""

GB = 1_000_000_000


@dataclass(frozen=True)
class Fabric:
    """A point-to-point interconnect between ranks.

    Attributes:
        name: Human-readable name.
        bandwidth_gbps: Per-link, per-direction bandwidth in GB/s.
        latency_us: Per-message latency in microseconds.
    """

    name: str
    bandwidth_gbps: float
    latency_us: float

    @property
    def bandwidth(self) -> float:
        return self.bandwidth_gbps * GB

    @property
    def latency(self) -> float:
        return self.latency_us * 1e-6


# 4x NDR InfiniBand = 400 Gbps ~= 50 GB/s per node (the paper's A100 cluster).
INFINIBAND_NDR = Fabric("InfiniBand 4x NDR", 50.0, 3.0)
ETHERNET_100G = Fabric("100 GbE", 12.5, 10.0)
NVLINK_P2P = Fabric("NVLink peer-to-peer", 300.0, 1.5)

EXCHANGE_CATEGORY = "exchange"


class Communicator:
    """A fixed group of ranks that synchronise through collectives.

    ``fabric_for(i, j)`` optionally overrides the link between a specific
    rank pair — the multi-GPU-per-node extension: ranks on the same host
    talk over NVLink peer links while cross-host traffic rides the default
    fabric, exactly how NCCL picks transports.
    """

    def __init__(
        self,
        clocks: Sequence[SimClock],
        fabric: Fabric,
        fabric_for=None,
    ):
        if not clocks:
            raise ValueError("communicator needs at least one rank")
        self._clocks = list(clocks)
        self.fabric = fabric
        self._fabric_for = fabric_for
        self.bytes_on_wire = 0
        self.collective_count = 0
        # Fault-injection hook (attached by repro.faults.FaultInjector;
        # None = healthy fabric).
        self.fault_injector = None
        self.dropped_collectives = 0
        # Observability sink: each collective becomes a span (with per-link
        # byte counts for all-to-all) and each dropped handshake an event.
        self.tracer = NULL_TRACER
        # Send/compute overlap (the distributed copy/compute-overlap
        # extension): before a pipelined exchange, the distributed executor
        # deposits the fragment-compute seconds the collective may hide
        # behind.  The budget is consumed by the next collective; at the
        # default of 0.0 every collective is fully synchronous (seed
        # behaviour).  ``max_overlap_fraction`` caps how much of the wire
        # time can hide even with ample budget (the send of the *last*
        # produced chunk can never overlap anything).
        self.max_overlap_fraction = 0.75
        self.overlap_budget_s = 0.0
        self.overlap_hidden_s = 0.0

    def link(self, src: int, dst: int) -> Fabric:
        """The fabric used between two ranks."""
        if self._fabric_for is not None:
            override = self._fabric_for(src, dst)
            if override is not None:
                return override
        return self.fabric

    @property
    def world_size(self) -> int:
        return len(self._clocks)

    # -- internals ----------------------------------------------------------

    def _complete(
        self, comm_seconds: float, nbytes: int, kind: str = "collective", links=None
    ) -> float:
        """Advance all ranks to ``max(arrivals) + comm_seconds``."""
        start = max(c.now for c in self._clocks)
        # Consume the overlap budget unconditionally: a retried collective
        # (link fault) must not re-overlap compute that already elapsed.
        budget = self.overlap_budget_s
        self.overlap_budget_s = 0.0
        injector = self.fault_injector
        if injector is not None:
            if injector.take_link_fault(start):
                # The failed handshake costs every rank one latency round
                # before the error surfaces to the exchange layer.
                failed_at = start + self.fabric.latency
                for clock in self._clocks:
                    clock.advance_to(failed_at, category=EXCHANGE_CATEGORY)
                self.dropped_collectives += 1
                self.tracer.event(
                    "link-drop", sim_time=failed_at, kind=kind, dropped_at=start
                )
                raise LinkDroppedError(
                    f"collective dropped at t={start:.6f}s (simulated link fault)"
                )
            # Bandwidth degradation stretches the whole operation (the
            # latency share is negligible for the exchanges that matter).
            comm_seconds /= injector.bandwidth_factor(start)
        end = start + comm_seconds
        hidden = 0.0
        if budget > 0.0:
            # Pipelined exchange: the sends were issued while the fragment
            # was still computing, so up to max_overlap_fraction of the wire
            # time (bounded by the compute actually available to hide
            # behind) has already elapsed by the time ranks synchronise.
            hidden = min(comm_seconds * self.max_overlap_fraction, budget)
            self.overlap_hidden_s += hidden
            end -= hidden
        for clock in self._clocks:
            clock.advance_to(end, category=EXCHANGE_CATEGORY)
        self.bytes_on_wire += nbytes
        self.collective_count += 1
        if self.tracer.enabled:
            attrs = {
                "bytes": nbytes,
                "world_size": self.world_size,
                "fabric": self.fabric.name,
            }
            if hidden > 0.0:
                attrs["hidden_s"] = hidden
            if links:
                attrs["link_bytes"] = [
                    {"src": i, "dst": j, "bytes": b} for i, j, b in links
                ]
            self.tracer.record_span(
                f"nccl.{kind}", "collective", start=start, end=end, **attrs
            )
            self.tracer.count("nccl.bytes_on_wire", nbytes)
        return comm_seconds

    # -- collectives ----------------------------------------------------------

    def barrier(self) -> float:
        """Synchronise all ranks with a latency-only round."""
        return self._complete(self.fabric.latency, 0, kind="barrier")

    def broadcast(self, root: int, nbytes: int) -> float:
        """Pipelined broadcast of ``nbytes`` from ``root`` to all ranks.

        With heterogeneous links the slowest receiver paces the pipeline.
        """
        self._check_rank(root)
        if self.world_size == 1:
            return self._complete(0.0, 0, kind="broadcast")
        links = [self.link(root, r) for r in range(self.world_size) if r != root]
        slowest = min(link.bandwidth for link in links)
        latency = max(link.latency for link in links)
        seconds = latency + nbytes / slowest
        return self._complete(
            seconds,
            nbytes * (self.world_size - 1),
            kind="broadcast",
            links=[(root, r, nbytes) for r in range(self.world_size) if r != root],
        )

    def all_to_all(self, bytes_matrix: Sequence[Sequence[int]]) -> float:
        """Full shuffle: rank ``i`` sends ``bytes_matrix[i][j]`` to rank ``j``.

        Diagonal entries (data staying local) are free.  The bottleneck rank
        — max of per-rank bytes sent or received — sets the duration.
        """
        n = self.world_size
        if len(bytes_matrix) != n or any(len(row) != n for row in bytes_matrix):
            raise ValueError(f"bytes_matrix must be {n}x{n}")
        # Per-rank serialised send/recv time over the (possibly per-pair)
        # links; the bottleneck rank paces the collective.
        send_time = [0.0] * n
        recv_time = [0.0] * n
        wire_bytes = 0
        for i in range(n):
            for j in range(n):
                if i == j or not bytes_matrix[i][j]:
                    continue
                link = self.link(i, j)
                t = bytes_matrix[i][j] / link.bandwidth
                send_time[i] += t
                recv_time[j] += t
                wire_bytes += bytes_matrix[i][j]
        bottleneck = max(max(send_time, default=0.0), max(recv_time, default=0.0))
        seconds = self.fabric.latency * max(n - 1, 1) + bottleneck
        links = [
            (i, j, bytes_matrix[i][j])
            for i in range(n)
            for j in range(n)
            if i != j and bytes_matrix[i][j]
        ]
        return self._complete(seconds, wire_bytes, kind="all_to_all", links=links)

    def gather(self, root: int, nbytes_per_rank: Sequence[int]) -> float:
        """Gather (merge pattern): every rank sends its bytes to ``root``."""
        self._check_rank(root)
        if len(nbytes_per_rank) != self.world_size:
            raise ValueError("need one byte count per rank")
        incoming = sum(b for r, b in enumerate(nbytes_per_rank) if r != root)
        seconds = self.fabric.latency + incoming / self.fabric.bandwidth
        return self._complete(
            seconds,
            incoming,
            kind="gather",
            links=[(r, root, b) for r, b in enumerate(nbytes_per_rank) if r != root and b],
        )

    def multicast(self, root: int, targets: Sequence[int], nbytes: int) -> float:
        """Send ``nbytes`` from ``root`` to a subset of ranks."""
        self._check_rank(root)
        remote = [t for t in targets if t != root]
        for t in remote:
            self._check_rank(t)
        if not remote:
            return self._complete(0.0, 0, kind="multicast")
        # Root's egress link serialises distinct destinations.
        seconds = self.fabric.latency + nbytes * len(remote) / self.fabric.bandwidth
        return self._complete(
            seconds,
            nbytes * len(remote),
            kind="multicast",
            links=[(root, t, nbytes) for t in remote],
        )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range (world size {self.world_size})")
