"""Analytical kernel cost model for simulated devices.

GPU analytical operators are predominantly memory-bound (the premise of the
paper's Table 1: a GH200 has ~7.5x the memory bandwidth of a comparable CPU
box at the same rental cost).  The model therefore charges every kernel

    time = launch_overhead
         + streamed_bytes / streaming_bandwidth
         + random_bytes   / (streaming_bandwidth * random_access_efficiency)
         + rows / row_throughput * class_row_factor
         (* contention_penalty for low-cardinality hash aggregation)

Kernel classes and their quirks mirror the behaviours the paper discusses:

* ``HASH_PROBE`` / ``HASH_BUILD`` / ``GATHER`` pay the random-access
  efficiency discount — joins dominate TPC-H time (Figure 5).
* ``GROUPBY_HASH`` with few distinct groups pays a *contention* penalty on
  GPUs (atomics hammering few addresses) — the paper calls this out for Q1.
* ``GROUPBY_SORT`` is the sort-based path libcudf takes for string keys —
  the paper calls this out for Q10/Q18 — and costs ``log2(n)`` passes.
* ``SORT`` is an ``O(n log n)`` radix/merge hybrid: ``log2`` bandwidth passes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .specs import DeviceSpec

__all__ = ["KernelClass", "KernelCostModel", "CostBreakdown"]

GB = 1_000_000_000


class KernelClass:
    """String constants naming the kernel families the model distinguishes."""

    STREAM = "stream"  # elementwise: filters, projections, reductions
    HASH_BUILD = "hash_build"
    HASH_PROBE = "hash_probe"
    GATHER = "gather"
    SCATTER = "scatter"
    SORT = "sort"
    GROUPBY_HASH = "groupby_hash"
    GROUPBY_SORT = "groupby_sort"
    STRING = "string"  # string matching / LIKE evaluation

    ALL = (
        STREAM, HASH_BUILD, HASH_PROBE, GATHER, SCATTER,
        SORT, GROUPBY_HASH, GROUPBY_SORT, STRING,
    )


# Per-class multiplier on the per-row compute term.  Streaming kernels are
# nearly free per row; hashing and string matching cost more ALU work.
_ROW_FACTOR = {
    KernelClass.STREAM: 1.0,
    KernelClass.HASH_BUILD: 3.0,
    KernelClass.HASH_PROBE: 2.5,
    KernelClass.GATHER: 1.0,
    KernelClass.SCATTER: 1.2,
    KernelClass.SORT: 4.0,
    KernelClass.GROUPBY_HASH: 3.0,
    # Sort-based group-by (libcudf's string-key path) pays variable-length
    # comparisons per sort step — far more per-row work than hashing.
    KernelClass.GROUPBY_SORT: 6.0,
    KernelClass.STRING: 6.0,
}

# Which classes treat their input traffic as random-access rather than
# streaming.
_RANDOM_CLASSES = frozenset(
    {
        KernelClass.HASH_BUILD,
        KernelClass.HASH_PROBE,
        KernelClass.GATHER,
        KernelClass.SCATTER,
        KernelClass.GROUPBY_HASH,
        # String sorting permutes variable-length payloads: its traffic is
        # data-dependent, not streaming.
        KernelClass.GROUPBY_SORT,
    }
)


@dataclass(frozen=True)
class CostBreakdown:
    """The components of one kernel-launch charge, for tests and tracing."""

    launch: float
    streaming: float
    random: float
    compute: float
    penalty: float

    @property
    def total(self) -> float:
        return self.launch + self.streaming + self.random + self.compute + self.penalty


class KernelCostModel:
    """Computes simulated durations for kernel launches on one device."""

    # GPUs suffer atomic contention when a hash aggregation has very few
    # distinct groups; CPUs do not (per-core partial aggregates).
    _CONTENTION_THRESHOLD_GROUPS = 4096
    _CONTENTION_MAX_PENALTY = 3.0

    def __init__(self, spec: DeviceSpec):
        self.spec = spec
        self._bw = spec.memory_bw_gbps * GB
        self._rand_bw = self._bw * spec.random_access_efficiency
        self._row_tput = spec.row_throughput_grows * 1e9
        self._launch = spec.kernel_launch_us * 1e-6

    def kernel_cost(
        self,
        kclass: str,
        bytes_in: int,
        bytes_out: int,
        rows: int,
        num_groups: int | None = None,
    ) -> CostBreakdown:
        """Cost one kernel launch.

        Args:
            kclass: One of :class:`KernelClass`.
            bytes_in: Bytes read by the kernel.
            bytes_out: Bytes written by the kernel.
            rows: Rows processed (drives the per-row compute term).
            num_groups: For ``GROUPBY_HASH``, the number of distinct groups
                (drives the contention penalty).

        Returns:
            A :class:`CostBreakdown`; callers usually charge ``.total``.
        """
        if kclass not in _ROW_FACTOR:
            raise ValueError(f"unknown kernel class {kclass!r}")
        passes = 1.0
        if kclass in (KernelClass.SORT, KernelClass.GROUPBY_SORT):
            passes = max(1.0, math.log2(max(rows, 2)) / 8.0)  # 8 bits/radix pass

        streamed = 0.0
        random = 0.0
        if kclass in _RANDOM_CLASSES:
            # Output of random-access kernels streams; input is random (and
            # re-touched once per radix/merge pass for sort-based kernels).
            random = bytes_in * passes / self._rand_bw
            streamed = bytes_out / self._bw
        else:
            streamed = (bytes_in * passes + bytes_out) / self._bw

        compute = rows * _ROW_FACTOR[kclass] / self._row_tput * passes

        penalty = 0.0
        if (
            kclass == KernelClass.GROUPBY_HASH
            and self.spec.kind == "gpu"
            and num_groups is not None
            and 0 < num_groups < self._CONTENTION_THRESHOLD_GROUPS
        ):
            # Fewer groups -> more atomics per address -> bigger penalty,
            # saturating at _CONTENTION_MAX_PENALTY x the compute term.
            severity = 1.0 - math.log2(max(num_groups, 1) + 1) / math.log2(
                self._CONTENTION_THRESHOLD_GROUPS
            )
            penalty = compute * self._CONTENTION_MAX_PENALTY * max(severity, 0.0)

        return CostBreakdown(self._launch, streamed, random, compute, penalty)

    def fused_cost(
        self,
        parts: "list[tuple[str, int, int, int, int | None]]",
        bytes_in: int,
        bytes_out: int,
    ) -> CostBreakdown:
        """Cost a fused run of kernels charged as a single launch.

        ``parts`` lists the constituent kernels as
        ``(kclass, bytes_in, bytes_out, rows, num_groups)`` tuples;
        ``bytes_in``/``bytes_out`` is the *external* traffic — the chunk
        read once at the head of the fused region and the result written
        once at its tail.  Interior materialisations stay in registers /
        shared memory, so their streaming traffic is priced at zero; the
        per-part compute, random-access, and contention terms are
        preserved (fusion removes memory round-trips, not ALU work), and
        only one launch overhead is paid.  The streaming term is capped
        at the parts' combined interior traffic: a fused region whose
        constituent kernels touch *fewer* bytes than the external chunk
        (pass-through columns are never copied) keeps the cheaper charge,
        so by construction the fused cost is never more than the sum of
        the parts' standalone costs.
        """
        interior = sum(p[1] + p[2] for p in parts)
        streamed = min(bytes_in + bytes_out, interior) / self._bw
        random = 0.0
        compute = 0.0
        penalty = 0.0
        for kclass, p_in, p_out, rows, num_groups in parts:
            part = self.kernel_cost(kclass, p_in, p_out, rows, num_groups)
            random += part.random
            compute += part.compute
            penalty += part.penalty
        return CostBreakdown(self._launch, streamed, random, compute, penalty)

    def transfer_cost(self, nbytes: int, pinned: bool = False) -> float:
        """Seconds to move ``nbytes`` over the device's host interconnect.

        ``pinned`` prices a transfer from/to page-locked host memory, which
        streams at the link's full peak rate; pageable traffic achieves
        only ``spec.pinned_bw_fraction`` of it (§3.4 spills to pinned host
        memory).  At the default fraction of 1.0 both rates are identical.
        """
        link_bw = self.spec.interconnect_gbps * GB
        if pinned:
            link_bw /= self.spec.pinned_bw_fraction
        return self.spec.interconnect_latency_us * 1e-6 + nbytes / link_bw

    def disk_transfer_cost(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` between pinned host memory and the
        simulated local-disk spill tier (out-of-core partition demotion)."""
        return self.spec.disk_latency_us * 1e-6 + nbytes / (
            self.spec.disk_bw_gbps * GB
        )
