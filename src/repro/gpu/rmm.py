"""An RMM-style pool sub-allocator for the data-processing region.

The paper's Sirius uses the RAPIDS Memory Manager pool allocator for the
device region that holds intermediate results (hash tables, join outputs,
...), avoiding per-kernel cudaMalloc overhead.  This reproduction models
the same discipline: one pre-allocated arena, first-fit free-list
sub-allocation with block splitting and coalescing on free, and
out-of-memory errors that surface exactly where a real pool would OOM.

Offsets are simulated (no backing storage lives here — actual values live
in NumPy arrays owned by :class:`~repro.gpu.buffer.DeviceBuffer`); the
allocator exists so that capacity pressure, fragmentation, and peak usage
behave like the real system's.
"""

from __future__ import annotations

from dataclasses import dataclass

from .memory import OutOfDeviceMemory

__all__ = ["PoolAllocator", "PoolStats", "Allocation"]

_ALIGNMENT = 256  # CUDA allocation alignment


@dataclass(frozen=True)
class Allocation:
    """A live sub-allocation: arena offset + rounded size + pool generation.

    ``alloc_id`` uniquely identifies the allocation across the pool's
    lifetime (offsets are recycled, ids are not); ``owner`` tags the query
    that made it, so the serving scheduler can reclaim one query's
    intermediates with :meth:`PoolAllocator.release_owner` without
    resetting the whole (shared) pool.
    """

    offset: int
    size: int
    generation: int = 0
    alloc_id: int = 0
    owner: object = None


@dataclass
class PoolStats:
    """Counters describing pool health."""

    capacity: int
    in_use: int
    peak_in_use: int
    num_allocs: int
    num_frees: int
    free_blocks: int
    largest_free_block: int

    @property
    def fragmentation(self) -> float:
        """1 - (largest free block / total free bytes); 0 when unfragmented."""
        free = self.capacity - self.in_use
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free


# Pressure-relief retries per allocation: each round must spill at least
# one partition, so this only bounds a buggy callback that claims progress
# without freeing anything.
_PRESSURE_RETRY_LIMIT = 64


class PoolAllocator:
    """First-fit free-list allocator over a fixed arena."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("pool capacity must be positive")
        self.capacity = _round_up(capacity)
        # Sorted list of (offset, size) free blocks.
        self._free: list[tuple[int, int]] = [(0, self.capacity)]
        self._live: dict[int, int] = {}  # offset -> size
        self._in_use = 0
        self._peak = 0
        self._watermark = 0  # high-water mark since begin_watermark()
        self._num_allocs = 0
        self._num_frees = 0
        self.generation = 0
        self._next_alloc_id = 1
        # Per-query (owner) bookkeeping for concurrent serving:
        #   _owners: offset -> owner tag of the live allocation there;
        #   _ids: offset -> alloc_id of the live allocation there;
        #   _reaped: alloc_ids already freed wholesale by release_owner()
        #     (a later free() of the stale handle is a silent no-op);
        #   _reserved: owner -> bytes reserved by the admission controller.
        self._owners: dict[int, object] = {}
        self._ids: dict[int, int] = {}
        self._reaped: set[int] = set()
        self._reserved: dict[object, int] = {}
        # Out-of-core pressure plumbing.  Both default to off, which keeps
        # the allocator byte-identical to the seed:
        #   soft_limit caps in-use bytes below capacity (memory-pressure
        #     faults shrink it mid-query);
        #   pressure_callback is asked to free the shortfall *before* OOM
        #     is raised — returning True means bytes were released
        #     (partitions spilled) and the allocation retries.
        self.soft_limit: int | None = None
        self.pressure_callback = None
        self.pressure_events = 0
        self._in_pressure = False
        # Shadow-ledger observer (attached by the sanitizer layer; None =
        # unsanitized run, zero overhead on the hot path).
        self.sanitizer = None

    # -- allocation ---------------------------------------------------------

    def allocate(self, nbytes: int, owner: object = None) -> Allocation:
        """Allocate ``nbytes`` (rounded up to 256-byte alignment).

        Args:
            nbytes: Requested size.
            owner: Optional query tag; owned allocations can be reclaimed
                together with :meth:`release_owner` (multi-query serving).

        Raises:
            OutOfDeviceMemory: If no free block can satisfy the request —
                either genuine exhaustion or fragmentation — and the
                pressure callback (if any) could not release enough bytes.
        """
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        size = max(_round_up(nbytes), _ALIGNMENT)
        for _ in range(_PRESSURE_RETRY_LIMIT):
            allocation = self._try_allocate(size, owner)
            if allocation is not None:
                return allocation
            if not self._relieve_pressure(size):
                break
        limit = (
            self.capacity
            if self.soft_limit is None
            else min(self.capacity, self.soft_limit)
        )
        raise OutOfDeviceMemory(size, max(limit - self._in_use, 0), "processing pool")

    def _try_allocate(self, size: int, owner: object) -> Allocation | None:
        """One first-fit pass; ``None`` when the pool (or its soft limit)
        cannot satisfy the request."""
        if self.soft_limit is not None and self._in_use + size > self.soft_limit:
            return None
        for i, (offset, block) in enumerate(self._free):
            if block >= size:
                if block == size:
                    del self._free[i]
                else:
                    self._free[i] = (offset + size, block - size)
                self._live[offset] = size
                self._in_use += size
                self._peak = max(self._peak, self._in_use)
                self._watermark = max(self._watermark, self._in_use)
                self._num_allocs += 1
                alloc_id = self._next_alloc_id
                self._next_alloc_id += 1
                self._ids[offset] = alloc_id
                if owner is not None:
                    self._owners[offset] = owner
                allocation = Allocation(offset, size, self.generation, alloc_id, owner)
                if self.sanitizer is not None:
                    self.sanitizer.on_pool_alloc(allocation)
                return allocation
        return None

    def _relieve_pressure(self, size: int) -> bool:
        """Ask the registered spiller to free ``size`` bytes.

        Returns True when the callback claims progress (the allocation is
        retried).  Re-entrant calls — the spiller itself allocating while
        it moves a partition — fall straight through to OOM rather than
        recursing.
        """
        if self.pressure_callback is None or self._in_pressure:
            return False
        self._in_pressure = True
        try:
            freed = bool(self.pressure_callback(size))
        finally:
            self._in_pressure = False
        if freed:
            self.pressure_events += 1
        return freed

    def reset(self) -> None:
        """Release every live allocation at once (inter-query pool reset).

        This is how the engine reclaims all of a query's intermediates:
        chunk-level temporaries freely share buffers, so wholesale reset is
        both simpler and closer to how RMM pools are actually recycled.
        Outstanding :class:`Allocation` handles become stale; freeing one
        afterwards is a no-op (see :meth:`free`).
        """
        self._free = [(0, self.capacity)]
        self._live.clear()
        self._in_use = 0
        self._owners.clear()
        self._ids.clear()
        self._reaped.clear()
        self.generation += 1
        if self.sanitizer is not None:
            self.sanitizer.on_pool_reset()

    def free(self, alloc: Allocation) -> None:
        """Return an allocation to the pool, coalescing with neighbours.

        Allocations from before the last :meth:`reset` are stale and are
        ignored, as are allocations already reclaimed wholesale by
        :meth:`release_owner` (the serving scheduler frees a finished
        query's intermediates before individual handles are dropped).
        """
        if self.sanitizer is not None:
            # Judged *before* the stale/reaped short-circuits mutate state,
            # so the sanitizer sees exactly what the caller attempted.
            self.sanitizer.on_pool_free(self, alloc)
        if alloc.generation != self.generation:
            return
        if alloc.alloc_id and alloc.alloc_id in self._reaped:
            self._reaped.discard(alloc.alloc_id)
            return
        size = self._live.pop(alloc.offset, None)
        if size is None:
            raise ValueError(f"double free or unknown allocation at offset {alloc.offset}")
        if size != alloc.size:
            raise ValueError("allocation record does not match live table")
        self._owners.pop(alloc.offset, None)
        self._ids.pop(alloc.offset, None)
        self._in_use -= size
        self._num_frees += 1
        self._insert_free(alloc.offset, size)

    def release_owner(self, owner: object) -> int:
        """Free every live allocation tagged with ``owner``; returns the
        bytes reclaimed.

        This is the serving-mode replacement for :meth:`reset`: with N
        concurrent queries sharing the pool, a finished query's
        intermediates are reclaimed without disturbing the others.
        Outstanding handles to the freed allocations become stale no-ops.
        """
        if owner is None:
            raise ValueError("release_owner needs a non-None owner tag")
        if self.sanitizer is not None:
            self.sanitizer.on_pool_release_owner(owner)
        offsets = [off for off, tag in self._owners.items() if tag == owner]
        reclaimed = 0
        for offset in offsets:
            size = self._live.pop(offset)
            self._owners.pop(offset, None)
            alloc_id = self._ids.pop(offset, None)
            if alloc_id is not None:
                self._reaped.add(alloc_id)
            self._in_use -= size
            self._num_frees += 1
            reclaimed += size
            self._insert_free(offset, size)
        return reclaimed

    # -- admission reservations ----------------------------------------------
    #
    # Reservations are *advisory* byte claims made by the admission
    # controller before a query starts: they never move the free list, but
    # the controller gates new admissions on capacity minus the sum of
    # outstanding reservations, which is what bounds concurrent working
    # sets on the shared pool.

    def reserve(self, owner: object, nbytes: int) -> None:
        """Record an advisory working-set reservation for ``owner``."""
        if nbytes < 0:
            raise ValueError("reservation must be non-negative")
        self._reserved[owner] = self._reserved.get(owner, 0) + int(nbytes)

    def unreserve(self, owner: object) -> int:
        """Drop ``owner``'s reservation; returns the bytes released."""
        return self._reserved.pop(owner, 0)

    @property
    def reserved_total(self) -> int:
        """Sum of outstanding advisory reservations."""
        return sum(self._reserved.values())

    def owner_bytes(self, owner: object) -> int:
        """Live bytes currently allocated under ``owner``'s tag."""
        return sum(
            self._live[off] for off, tag in self._owners.items() if tag == owner
        )

    def _insert_free(self, offset: int, size: int) -> None:
        # Binary insert then coalesce with adjacent blocks.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (offset, size))
        # Coalesce right neighbour.
        if lo + 1 < len(self._free):
            nxt_off, nxt_size = self._free[lo + 1]
            if offset + size == nxt_off:
                self._free[lo] = (offset, size + nxt_size)
                del self._free[lo + 1]
        # Coalesce left neighbour.
        if lo > 0:
            prev_off, prev_size = self._free[lo - 1]
            cur_off, cur_size = self._free[lo]
            if prev_off + prev_size == cur_off:
                self._free[lo - 1] = (prev_off, prev_size + cur_size)
                del self._free[lo]

    # -- introspection --------------------------------------------------------

    def begin_watermark(self) -> None:
        """Start a fresh high-water window (one query's device-memory peak).

        Unlike :attr:`PoolStats.peak_in_use`, which is monotone over the
        pool's lifetime, the watermark is rebaselined per query so the
        observability layer can report each query's own memory peak.
        """
        self._watermark = self._in_use

    @property
    def watermark(self) -> int:
        """High-water mark of bytes in use since :meth:`begin_watermark`."""
        return self._watermark

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def stats(self) -> PoolStats:
        largest = max((s for _, s in self._free), default=0)
        return PoolStats(
            capacity=self.capacity,
            in_use=self._in_use,
            peak_in_use=self._peak,
            num_allocs=self._num_allocs,
            num_frees=self._num_frees,
            free_blocks=len(self._free),
            largest_free_block=largest,
        )

    def check_invariants(self) -> None:
        """Assert internal consistency; used by property-based tests."""
        blocks = sorted(self._free) + sorted((o, s) for o, s in self._live.items())
        blocks.sort()
        cursor = 0
        for offset, size in blocks:
            if offset < cursor:
                raise AssertionError(f"overlapping blocks at offset {offset}")
            cursor = offset + size
        if cursor > self.capacity:
            raise AssertionError("blocks extend past arena end")
        total = sum(s for _, s in self._free) + sum(self._live.values())
        if total != self.capacity:
            raise AssertionError(f"bytes leaked: accounted {total} != {self.capacity}")


def _round_up(n: int) -> int:
    return (n + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
