"""Hardware catalog: the instances, devices, and trend data the paper cites.

This module is the single source of truth for

* **Table 1** — the CPU-vs-GPU instance comparison (cores, memory bandwidth,
  memory size, rental cost);
* **Figure 1** — hardware trend series (GPU memory per generation, CPU-GPU
  interconnect bandwidth, storage bandwidth, network bandwidth);
* the calibrated parameters of the simulated devices used everywhere else
  (HBM/DRAM bandwidth, interconnect links, kernel-launch overheads).

All bandwidths are GB/s (decimal), memory sizes GB, costs $/hour.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "InstanceSpec",
    "DeviceSpec",
    "GH200",
    "A100_40G",
    "H100_80G",
    "C6A_METAL",
    "M7I_16XLARGE",
    "XEON_6526Y",
    "GRACE_CPU",
    "TABLE1_INSTANCES",
    "TRENDS",
]

GB = 1_000_000_000


@dataclass(frozen=True)
class InstanceSpec:
    """A rentable machine, as compared in the paper's Table 1."""

    name: str
    vendor: str
    kind: str  # "cpu" | "gpu"
    cores: int  # vCPUs or CUDA cores
    memory_bw_gbps: float  # GB/s
    memory_gb: float
    cost_per_hour: float
    cloud: str

    @property
    def bandwidth_per_dollar(self) -> float:
        """GB/s of memory bandwidth per $/hour — the paper's cost-normalised
        lens on why GPUs win."""
        return self.memory_bw_gbps / self.cost_per_hour


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of a simulated execution device.

    The analytical cost model (``repro.gpu.costmodel``) consumes these:

    Attributes:
        name: Marketing name.
        kind: ``"gpu"`` or ``"cpu"``.
        memory_gb: Device-resident memory capacity (HBM for GPUs, DRAM for
            CPU devices).
        memory_bw_gbps: Streaming read/write bandwidth of that memory.
        random_access_efficiency: Fraction of streaming bandwidth achieved
            by data-dependent (hash probe / gather) access patterns.
        row_throughput_grows: Peak rows/second (in billions) the device can
            push through a simple elementwise kernel; models the compute
            side for very narrow rows.
        kernel_launch_us: Fixed overhead per kernel launch (GPU) or per
            operator/morsel dispatch (CPU).
        interconnect_gbps: Host link bandwidth — PCIe or NVLink-C2C for
            GPUs; effectively infinite (same memory) for CPU devices.
        interconnect_latency_us: One-way latency of the host link.
        pinned_bw_fraction: Fraction of the link's peak bandwidth that
            *pageable* transfers achieve; pinned (page-locked) host memory
            streams at the full peak, i.e. ``1/pinned_bw_fraction`` times
            faster.  The default of 1.0 makes pinned and pageable rates
            identical, keeping seed outputs unchanged.
        disk_bw_gbps: Bandwidth of the simulated local-disk spill tier
            (out-of-core execution demotes cold partitions there when the
            pinned-host budget overflows).  Defaults to an NVMe PCIe5 SSD
            per the Figure 1c storage trend.
        disk_latency_us: Fixed per-IO latency of that tier.
    """

    name: str
    kind: str
    memory_gb: float
    memory_bw_gbps: float
    random_access_efficiency: float
    row_throughput_grows: float
    kernel_launch_us: float
    interconnect_gbps: float
    interconnect_latency_us: float
    pinned_bw_fraction: float = 1.0
    disk_bw_gbps: float = 14.0
    disk_latency_us: float = 100.0


# ---------------------------------------------------------------------------
# Table 1 instances
# ---------------------------------------------------------------------------

C6A_METAL = InstanceSpec(
    name="c6a.metal (AMD EPYC)", vendor="AMD", kind="cpu",
    cores=192, memory_bw_gbps=400.0, memory_gb=384.0,
    cost_per_hour=7.344, cloud="AWS",
)
M7I_16XLARGE = InstanceSpec(
    name="m7i.16xlarge (Intel Xeon)", vendor="Intel", kind="cpu",
    cores=64, memory_bw_gbps=300.0, memory_gb=256.0,
    cost_per_hour=3.2, cloud="AWS",
)
GH200_INSTANCE = InstanceSpec(
    name="GH200 (NVIDIA Grace-Hopper)", vendor="NVIDIA", kind="gpu",
    cores=14592, memory_bw_gbps=3000.0, memory_gb=96.0,
    cost_per_hour=3.2, cloud="Lambda Labs",
)

TABLE1_INSTANCES = (C6A_METAL, GH200_INSTANCE)

# ---------------------------------------------------------------------------
# Simulated devices (evaluation §4.1 hardware)
# ---------------------------------------------------------------------------

GH200 = DeviceSpec(
    name="NVIDIA GH200 Hopper", kind="gpu",
    memory_gb=92.0, memory_bw_gbps=3000.0,
    random_access_efficiency=0.25, row_throughput_grows=20.0,
    kernel_launch_us=6.0,
    interconnect_gbps=450.0,  # NVLink-C2C, per direction
    interconnect_latency_us=2.0,
)

A100_40G = DeviceSpec(
    name="NVIDIA A100 40GB", kind="gpu",
    memory_gb=40.0, memory_bw_gbps=1550.0,
    random_access_efficiency=0.25, row_throughput_grows=12.0,
    kernel_launch_us=6.0,
    interconnect_gbps=25.6,  # PCIe4 x16, per direction
    interconnect_latency_us=5.0,
)

H100_80G = DeviceSpec(
    name="NVIDIA H100 80GB", kind="gpu",
    memory_gb=80.0, memory_bw_gbps=3350.0,
    random_access_efficiency=0.25, row_throughput_grows=22.0,
    kernel_launch_us=6.0,
    interconnect_gbps=64.0,  # PCIe5 x16
    interconnect_latency_us=4.0,
)

# CPU "devices": the cost-equivalent machines the baselines run on.  Memory
# is DRAM, interconnect is a no-op (data is already host-resident).

M7I_CPU = DeviceSpec(
    name="m7i.16xlarge CPU device", kind="cpu",
    memory_gb=256.0, memory_bw_gbps=300.0,
    random_access_efficiency=0.35, row_throughput_grows=1.6,
    kernel_launch_us=1.0,
    interconnect_gbps=300.0, interconnect_latency_us=0.1,
)

XEON_6526Y = DeviceSpec(
    name="Intel Xeon Gold 6526Y (64 cores)", kind="cpu",
    memory_gb=512.0, memory_bw_gbps=280.0,
    random_access_efficiency=0.35, row_throughput_grows=1.4,
    kernel_launch_us=1.0,
    interconnect_gbps=280.0, interconnect_latency_us=0.1,
)

GRACE_CPU = DeviceSpec(
    name="NVIDIA Grace (72 Neoverse cores)", kind="cpu",
    memory_gb=480.0, memory_bw_gbps=500.0,
    random_access_efficiency=0.35, row_throughput_grows=1.5,
    kernel_launch_us=1.0,
    interconnect_gbps=500.0, interconnect_latency_us=0.1,
)

# ---------------------------------------------------------------------------
# Figure 1 trend series
# ---------------------------------------------------------------------------

TRENDS: dict[str, list[tuple[int, str, float]]] = {
    # (year, label, GB) — GPU device memory per generation (Fig. 1a)
    "gpu_memory_gb": [
        (2014, "K80 (Kepler)", 24.0),
        (2016, "P100 (Pascal)", 16.0),
        (2017, "V100 (Volta)", 32.0),
        (2020, "A100 (Ampere)", 80.0),
        (2022, "H100 (Hopper)", 96.0),
        (2023, "H200 (Hopper)", 141.0),
        (2024, "B200 (Blackwell)", 192.0),
        (2025, "B300 Ultra (Blackwell)", 288.0),
    ],
    # (year, label, GB/s) — CPU<->GPU interconnect bandwidth (Fig. 1b)
    "interconnect_gbps": [
        (2012, "PCIe 3.0 x16", 16.0),
        (2017, "PCIe 4.0 x16", 32.0),
        (2019, "PCIe 5.0 x16", 64.0),
        (2022, "NVLink-C2C", 900.0),
        (2024, "PCIe 6.0 x16", 128.0),
    ],
    # (year, label, GB/s) — storage bandwidth reachable by a GPU (Fig. 1c)
    "storage_gbps": [
        (2014, "NVMe PCIe3 SSD", 3.5),
        (2018, "NVMe PCIe4 SSD", 7.0),
        (2021, "NVMe PCIe5 SSD", 14.0),
        (2023, "GPUDirect Storage array", 50.0),
        (2025, "S3 over RDMA", 200.0),
    ],
    # (year, label, GB/s) — network bandwidth per node (Fig. 1d)
    "network_gbps": [
        (2014, "40 GbE", 5.0),
        (2016, "100 GbE / EDR IB", 12.5),
        (2018, "200 Gb HDR IB", 25.0),
        (2021, "400 Gb NDR IB", 50.0),
        (2024, "800 Gb XDR IB", 100.0),
    ],
    # (year, label, $/h) — H100 on-demand price decline (§2.1)
    "h100_price_per_hour": [
        (2023, "H100 launch (Mar 2023)", 8.0),
        (2024, "H100 mid-2024", 4.5),
        (2025, "H100 2025", 3.0),
    ],
}


def trend_cagr(series: str) -> float:
    """Compound annual growth rate of a Figure 1 trend series.

    For the price series the value is negative (prices decline).
    """
    points = TRENDS[series]
    (y0, _, v0), (y1, _, v1) = points[0], points[-1]
    years = y1 - y0
    if years <= 0:
        raise ValueError(f"trend {series!r} spans no time")
    return (v1 / v0) ** (1.0 / years) - 1.0
