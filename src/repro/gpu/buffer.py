"""Device buffers: NumPy-backed arrays accounted against simulated memory.

A :class:`DeviceBuffer` is the unit the kernel library operates on.  Its
values physically live in a NumPy array (so kernels compute real results),
while its *bytes* are accounted against either the device's processing pool
(RMM-style) or its caching region — capacity pressure, OOM, and peak usage
therefore behave like the real GPU's.
"""

from __future__ import annotations

import numpy as np

from .rmm import Allocation

__all__ = ["DeviceBuffer"]


class DeviceBuffer:
    """A typed 1-D array resident in simulated device memory.

    Attributes:
        array: The backing NumPy array (real values).
        device: Owning :class:`~repro.gpu.device.Device`.
        region: ``"processing"`` or ``"caching"``.
    """

    __slots__ = ("array", "device", "region", "_allocation", "_freed", "_account_nbytes")

    def __init__(
        self,
        array: np.ndarray,
        device,
        region: str,
        allocation: Allocation | None,
        account_nbytes: int | None = None,
    ):
        self.array = array
        self.device = device
        self.region = region
        self._allocation = allocation
        self._freed = False
        # Bytes this buffer occupies on the device.  Normally the array
        # size; smaller when the buffer is stored compressed (the caching
        # region's lightweight-compression extension).
        self._account_nbytes = (
            int(array.nbytes) if account_nbytes is None else int(account_nbytes)
        )

    @property
    def nbytes(self) -> int:
        return self._account_nbytes

    @property
    def is_freed(self) -> bool:
        return self._freed

    def free(self) -> None:
        """Return the buffer's bytes to its region.  Idempotent."""
        if self._freed:
            return
        self._freed = True
        self.device.release_buffer(self, self._allocation)
        self.device.tracer.count("device.freed_bytes", self._account_nbytes)

    def __len__(self) -> int:
        return int(self.array.shape[0])

    def __repr__(self) -> str:
        state = "freed" if self._freed else "live"
        return f"DeviceBuffer({self.array.dtype}, {len(self)} items, {self.region}, {state})"
