"""Capacity-limited device memory accounting.

The simulated device enforces its HBM capacity: allocations beyond capacity
raise :class:`OutOfDeviceMemory`, which is what triggers Sirius' graceful
CPU fallback (and, with the out-of-core extension, spilling).
"""

from __future__ import annotations

__all__ = ["OutOfDeviceMemory", "DeviceMemory"]


class OutOfDeviceMemory(MemoryError):
    """Raised when a device allocation exceeds remaining capacity."""

    def __init__(self, requested: int, available: int, region: str):
        self.requested = requested
        self.available = available
        self.region = region
        super().__init__(
            f"out of device memory in {region}: requested {requested} bytes, "
            f"{available} available"
        )


class DeviceMemory:
    """Byte-level accounting for one memory region of a device."""

    def __init__(self, capacity: int, region: str = "device"):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self.region = region
        self._used = 0
        self._peak = 0
        self._alloc_count = 0

    @property
    def used(self) -> int:
        return self._used

    @property
    def available(self) -> int:
        return self.capacity - self._used

    @property
    def peak(self) -> int:
        """High-water mark of bytes in use."""
        return self._peak

    @property
    def alloc_count(self) -> int:
        return self._alloc_count

    def allocate(self, nbytes: int) -> None:
        """Reserve ``nbytes``; raises :class:`OutOfDeviceMemory` on overflow."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self._used + nbytes > self.capacity:
            raise OutOfDeviceMemory(nbytes, self.available, self.region)
        self._used += nbytes
        self._peak = max(self._peak, self._used)
        self._alloc_count += 1

    def free(self, nbytes: int) -> None:
        """Release ``nbytes`` previously allocated."""
        if nbytes < 0:
            raise ValueError("free size must be non-negative")
        if nbytes > self._used:
            raise ValueError(f"freeing {nbytes} bytes but only {self._used} in use")
        self._used -= nbytes

    def __repr__(self) -> str:
        return (
            f"DeviceMemory({self.region}: {self._used}/{self.capacity} bytes, "
            f"peak {self._peak})"
        )
