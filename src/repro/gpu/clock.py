"""Simulated time.

Every kernel launch, interconnect transfer, and network message in the
reproduction advances a :class:`SimClock` by an analytically-modelled
duration instead of (only) consuming wall-clock time.  This makes the
benchmark results deterministic and lets a laptop report the *shape* of
GH200-class numbers.

The clock also supports named accounting buckets so the executor can
produce the per-operator breakdowns of the paper's Figure 5 and Table 2.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator

__all__ = ["SimClock"]


class SimClock:
    """A monotonically advancing simulated clock with attribution buckets."""

    def __init__(self) -> None:
        self._now = 0.0
        self._buckets: dict[str, float] = defaultdict(float)
        self._category_stack: list[str] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds since clock creation."""
        return self._now

    def advance(self, seconds: float, category: str | None = None) -> None:
        """Advance simulated time.

        Args:
            seconds: Duration to add; must be non-negative.
            category: Optional bucket to attribute the time to.  If omitted
                and a category scope is active (see :meth:`attributed`),
                the innermost scope receives the time.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}s")
        self._now += seconds
        if category is None and self._category_stack:
            category = self._category_stack[-1]
        if category is not None:
            self._buckets[category] += seconds

    def advance_to(self, timestamp: float, category: str | None = None) -> None:
        """Advance the clock to an absolute simulated time if it is in the
        future; no-op otherwise.

        Used by collective operations in the distributed layer: a barrier
        aligns every participating node's clock to the latest arrival, and
        the waiting time is attributed (e.g. to ``"exchange"``).
        """
        if timestamp > self._now:
            self.advance(timestamp - self._now, category)

    @contextmanager
    def attributed(self, category: str) -> Iterator[None]:
        """Attribute all un-categorised advances inside the scope to
        ``category``.  Scopes nest; the innermost wins."""
        self._category_stack.append(category)
        try:
            yield
        finally:
            self._category_stack.pop()

    def bucket(self, category: str) -> float:
        """Total seconds attributed to ``category`` so far."""
        return self._buckets.get(category, 0.0)

    def buckets(self) -> dict[str, float]:
        """Snapshot of all attribution buckets."""
        return dict(self._buckets)

    def reset_buckets(self) -> None:
        """Clear attribution buckets without touching the clock itself."""
        self._buckets.clear()

    def elapsed_since(self, mark: float) -> float:
        """Seconds elapsed since a previously-sampled :attr:`now`."""
        return self._now - mark

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f}s, buckets={len(self._buckets)})"
