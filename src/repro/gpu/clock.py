"""Simulated time.

Every kernel launch, interconnect transfer, and network message in the
reproduction advances a :class:`SimClock` by an analytically-modelled
duration instead of (only) consuming wall-clock time.  This makes the
benchmark results deterministic and lets a laptop report the *shape* of
GH200-class numbers.

The clock also supports named accounting buckets so the executor can
produce the per-operator breakdowns of the paper's Figure 5 and Table 2.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator

__all__ = ["SimClock", "StreamClock"]


class StreamClock:
    """A named sub-timeline of a :class:`SimClock` (the CUDA-stream analogue).

    Work *issued* on a stream is enqueued behind the stream's frontier and
    runs concurrently with the host timeline: issuing never advances the
    parent clock.  The host joins the stream at a sync point via
    :meth:`wait`, which advances the parent clock only by the still-exposed
    remainder — time the stream spent running while the host also advanced
    is *hidden* (overlapped).

    Accounting:

    * ``busy_s`` — total seconds of work issued on the stream;
    * ``exposed_s`` — seconds the host actually waited at sync points;
    * ``busy_s - exposed_s`` — hidden (overlapped) time, the quantity the
      overlap-efficiency gauge reports.
    """

    __slots__ = ("parent", "name", "frontier", "busy_s", "exposed_s", "ops")

    def __init__(self, parent: "SimClock", name: str) -> None:
        self.parent = parent
        self.name = name
        self.frontier = 0.0  # completion time of the last issued work item
        self.busy_s = 0.0
        self.exposed_s = 0.0
        self.ops = 0

    def issue(self, seconds: float, category: str | None = None) -> tuple[float, float]:
        """Enqueue ``seconds`` of work on the stream; returns its
        ``(start, end)`` interval on the shared timeline.

        The work starts at the later of the stream frontier and the host's
        current time (a stream cannot run ahead of its enqueue point).  The
        parent clock is *not* advanced — that happens at :meth:`wait`.
        """
        if seconds < 0:
            raise ValueError(f"cannot issue {seconds}s of stream work")
        start = max(self.frontier, self.parent.now)
        end = start + seconds
        self.frontier = end
        self.busy_s += seconds
        self.ops += 1
        sanitizer = self.parent.sanitizer
        if sanitizer is not None:
            sanitizer.on_stream_issue(self.name, start, end)
        return start, end

    def wait(self, until: float | None = None, category: str | None = None) -> float:
        """Synchronise the host with the stream (event wait).

        Advances the parent clock to ``until`` (an event timestamp returned
        by :meth:`issue`, defaulting to the stream frontier) and attributes
        the exposed wait to ``category``.  Returns the exposed seconds —
        zero when the stream work already completed behind host compute.
        """
        target = self.frontier if until is None else until
        before = self.parent.now
        self.parent.advance_to(target, category)
        exposed = self.parent.now - before
        self.exposed_s += exposed
        sanitizer = self.parent.sanitizer
        if sanitizer is not None:
            sanitizer.on_stream_wait(self.name, target)
        return exposed

    @property
    def hidden_s(self) -> float:
        """Issued stream time that never blocked the host (overlapped)."""
        return max(self.busy_s - self.exposed_s, 0.0)

    def stats(self) -> dict[str, float]:
        return {
            "busy_s": self.busy_s,
            "exposed_s": self.exposed_s,
            "hidden_s": self.hidden_s,
            "ops": self.ops,
        }

    def __repr__(self) -> str:
        return (
            f"StreamClock({self.name!r}, frontier={self.frontier:.6f}s, "
            f"busy={self.busy_s:.6f}s)"
        )


class SimClock:
    """A monotonically advancing simulated clock with attribution buckets."""

    def __init__(self) -> None:
        self._now = 0.0
        self._buckets: dict[str, float] = defaultdict(float)
        self._category_stack: list[str] = []
        self._streams: dict[str, StreamClock] = {}
        # Happens-before observer (attached by the sanitizer layer; None =
        # unsanitized run, zero overhead on the hot path).
        self.sanitizer = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds since clock creation."""
        return self._now

    def advance(self, seconds: float, category: str | None = None) -> None:
        """Advance simulated time.

        Args:
            seconds: Duration to add; must be non-negative.
            category: Optional bucket to attribute the time to.  If omitted
                and a category scope is active (see :meth:`attributed`),
                the innermost scope receives the time.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}s")
        self._now += seconds
        if category is None and self._category_stack:
            category = self._category_stack[-1]
        if category is not None:
            self._buckets[category] += seconds

    def advance_to(self, timestamp: float, category: str | None = None) -> None:
        """Advance the clock to an absolute simulated time if it is in the
        future; no-op otherwise.

        Used by collective operations in the distributed layer: a barrier
        aligns every participating node's clock to the latest arrival, and
        the waiting time is attributed (e.g. to ``"exchange"``).
        """
        if timestamp > self._now:
            self.advance(timestamp - self._now, category)

    @contextmanager
    def attributed(self, category: str) -> Iterator[None]:
        """Attribute all un-categorised advances inside the scope to
        ``category``.  Scopes nest; the innermost wins."""
        self._category_stack.append(category)
        try:
            yield
        finally:
            self._category_stack.pop()

    def bucket(self, category: str) -> float:
        """Total seconds attributed to ``category`` so far."""
        return self._buckets.get(category, 0.0)

    def buckets(self) -> dict[str, float]:
        """Snapshot of all attribution buckets."""
        return dict(self._buckets)

    def reset_buckets(self) -> None:
        """Clear attribution buckets without touching the clock itself."""
        self._buckets.clear()

    def elapsed_since(self, mark: float) -> float:
        """Seconds elapsed since a previously-sampled :attr:`now`."""
        return self._now - mark

    # -- streams ---------------------------------------------------------------

    def stream(self, name: str) -> StreamClock:
        """Get-or-create the named stream sub-timeline.

        Streams share this clock's time base but advance independently;
        the same name always returns the same stream (CUDA stream handles).
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = self._streams[name] = StreamClock(self, name)
        return stream

    def stream_stats(self) -> dict[str, dict[str, float]]:
        """Per-stream busy/exposed/hidden accounting snapshot."""
        return {name: s.stats() for name, s in self._streams.items()}

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f}s, buckets={len(self._buckets)})"
