"""Structured output of the static-analysis layer.

Both analyzer fronts — the plan dataflow pass and the codebase invariant
linter — report through the same vocabulary: a :class:`Finding` is one
rule violation at one site, and an :class:`AnalysisReport` aggregates a
plan's findings together with the quantities admission control consumes
(static working-set estimate, GPU supportability, the degradation tier
the query is predicted to need).

Severity semantics:

* ``error`` — the plan is structurally broken; executing it would raise.
  Admission should reject it outright (``suggested_tier == "reject"``).
* ``warning`` — the plan executes, but not on the happy path: a construct
  needs the CPU fallback, or the working set will not fit the pool.
* ``info`` — advisory observations (estimate details, redundancies).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "Finding",
    "AnalysisReport",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SEVERITY_INFO",
    "TIER_GPU",
    "TIER_SPILL",
    "TIER_GPU_SPILL",
    "TIER_CPU_PLAN",
    "TIER_REJECT",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

# Statically-predicted execution tiers (mirrors the degradation ladder in
# repro.core.fallback, plus "reject" for plans that cannot run at all).
TIER_GPU = "gpu"
TIER_SPILL = "gpu-retry-spill"
TIER_GPU_SPILL = "gpu-spill"  # partitioned out-of-core execution
TIER_CPU_PLAN = "cpu-plan"
TIER_REJECT = "reject"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site (a plan path or a source location)."""

    rule: str  # rule id, e.g. "PA02" or "RR01"
    severity: str  # "error" | "warning" | "info"
    message: str
    site: str  # plan path like "root.join.left" or "file.py:42"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "site": self.site,
        }

    def __str__(self) -> str:
        return f"[{self.rule}] {self.severity} at {self.site}: {self.message}"


@dataclass
class AnalysisReport:
    """Everything the plan analyzer learned about one plan.

    Attributes:
        plan_fingerprint: Stable sha1-prefix identifier of the plan.
        findings: Every rule violation discovered, in visit order.
        output_schema: ``[(name, dtype_name), ...]`` of the plan result,
            or ``None`` when schema propagation failed.
        working_set_bytes: Static estimate of concurrent processing-pool
            bytes (hash tables, sort buffers, materialised result) —
            mirrors :func:`repro.sched.estimator.estimate_plan` and is
            cross-checked against it by the test suite.  ``None`` when no
            catalog/device was supplied.
        pipeline_working_sets: Per-site contributions to the working set
            (one entry per pipeline breaker: join build, aggregate state,
            sort buffer, final result).
        estimated_rows: Estimated result cardinality (``None`` without a
            catalog).
        estimated_service_s: Estimated simulated device seconds (``None``
            without a device).
        gpu_supported: False when any construct requires the CPU fallback.
        suggested_tier: The degradation tier the query is predicted to
            need: ``gpu`` | ``gpu-retry-spill`` | ``cpu-plan`` |
            ``reject``.
    """

    plan_fingerprint: str = "unknown"
    findings: list[Finding] = field(default_factory=list)
    output_schema: list[tuple[str, str]] | None = None
    working_set_bytes: int | None = None
    pipeline_working_sets: list[dict] = field(default_factory=list)
    estimated_rows: int | None = None
    estimated_service_s: float | None = None
    gpu_supported: bool = True
    suggested_tier: str = TIER_GPU

    # -- accessors -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True when the plan is executable (no error-severity findings)."""
        return not self.errors

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    def rules_hit(self) -> set[str]:
        return {f.rule for f in self.findings}

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "plan_fingerprint": self.plan_fingerprint,
            "ok": self.ok,
            "gpu_supported": self.gpu_supported,
            "suggested_tier": self.suggested_tier,
            "output_schema": self.output_schema,
            "working_set_bytes": self.working_set_bytes,
            "pipeline_working_sets": list(self.pipeline_working_sets),
            "estimated_rows": self.estimated_rows,
            "estimated_service_s": self.estimated_service_s,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """One human line: tier, findings count, working set."""
        parts = [f"tier={self.suggested_tier}", f"findings={len(self.findings)}"]
        if self.working_set_bytes is not None:
            parts.append(f"working_set={self.working_set_bytes / 1e6:.2f}MB")
        if self.estimated_rows is not None:
            parts.append(f"rows~{self.estimated_rows}")
        return " ".join(parts)
