"""CLI for the static-analysis layer.

    python -m repro.analysis lint [--root PATH] [--json]
    python -m repro.analysis plan FILE.json [--json]
    python -m repro.analysis rules

``lint`` exits non-zero when any invariant is violated (the CI gate);
``plan`` analyzes a serialized plan JSON file; ``rules`` prints the
catalog of both fronts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import PLAN_RULES, analyze_plan
from .lints import LINT_RULES, default_rules, lint_paths


def _default_root() -> Path:
    # src/repro/analysis/__main__.py -> src/repro
    return Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.analysis")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_lint = sub.add_parser("lint", help="run the codebase invariant lints")
    p_lint.add_argument("--root", type=Path, default=None, help="tree to lint")
    p_lint.add_argument("--json", action="store_true", help="machine output")

    p_plan = sub.add_parser("plan", help="analyze a serialized plan JSON file")
    p_plan.add_argument("file", type=Path)
    p_plan.add_argument("--json", action="store_true", help="full report JSON")

    sub.add_parser("rules", help="print the rule catalog")

    args = parser.parse_args(argv)

    if args.cmd == "lint":
        root = args.root if args.root is not None else _default_root()
        findings = lint_paths(root, default_rules())
        if args.json:
            print(json.dumps([f.to_dict() for f in findings], indent=2))
        else:
            for f in findings:
                print(f)
            print(f"{len(findings)} finding(s) over {root}")
        return 1 if findings else 0

    if args.cmd == "plan":
        from ..plan import Plan, PlanValidationError

        try:
            plan = Plan.from_json(args.file.read_text())
        except PlanValidationError as exc:
            print(f"invalid plan payload: {exc}", file=sys.stderr)
            return 2
        report = analyze_plan(plan)
        if args.json:
            print(report.to_json(indent=2))
        else:
            for f in report.findings:
                print(f)
            print(report.summary())
        return 0 if report.ok else 1

    # rules
    print("plan analyzer (PA):")
    for rule_id, desc in sorted(PLAN_RULES.items()):
        print(f"  {rule_id}  {desc}")
    print("invariant lints (RR):")
    for rule_id, cls in sorted(LINT_RULES.items()):
        print(f"  {rule_id}  {cls.description}")
    from .sanitizers import SA_RULES

    print("runtime sanitizers (SA):")
    for rule_id, desc in sorted(SA_RULES.items()):
        print(f"  {rule_id}  {desc}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
