"""Static analysis for plans and for the codebase itself.

Two fronts, one vocabulary (:class:`Finding` / :class:`AnalysisReport`):

* :func:`analyze_plan` — a dataflow pass over the plan IR that
  type-checks every expression, verifies exchange placement, estimates
  the working set, and predicts the degradation tier *before* any GPU
  memory is committed.  Admission control consumes the report.
* :mod:`repro.analysis.lints` — AST lints enforcing the repo's
  determinism and ownership invariants (``python -m repro.analysis lint``).
* :mod:`repro.analysis.sanitizers` — runtime sanitizers proving the
  *dynamic* invariants (happens-before on stream clocks, allocation
  pairing, schedule-digest purity) over sanitized runs
  (``python -m repro sanitize``).
"""

from .fusion_check import FUSION_RULES, verify_fused_plan
from .plan_analyzer import PLAN_RULES, analyze_plan
from .report import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    TIER_CPU_PLAN,
    TIER_GPU,
    TIER_REJECT,
    TIER_SPILL,
    AnalysisReport,
    Finding,
)
from .sanitizers import (
    SA_RULES,
    DeterminismChecker,
    Sanitizer,
    SanitizerReport,
    sanitized,
)

__all__ = [
    "SA_RULES",
    "Sanitizer",
    "sanitized",
    "SanitizerReport",
    "DeterminismChecker",
    "analyze_plan",
    "PLAN_RULES",
    "verify_fused_plan",
    "FUSION_RULES",
    "AnalysisReport",
    "Finding",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SEVERITY_INFO",
    "TIER_GPU",
    "TIER_SPILL",
    "TIER_CPU_PLAN",
    "TIER_REJECT",
]
