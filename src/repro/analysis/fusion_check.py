"""Front 1b: verification of *fused* physical plans.

:func:`repro.core.planner.fuse_operators` rewrites pipeline operator
lists — collapsing streaming runs into :class:`FusedOp` regions and
hoisting eligible join residual filters.  Any rewrite pass is a place
where a planner bug can silently change query semantics, so the fused
form gets its own verifier: :func:`verify_fused_plan` re-checks every
pipeline of a compiled :class:`~repro.core.planner.PhysicalPlan` and
returns :class:`~repro.analysis.report.Finding` objects in the same
vocabulary the plan analyzer and the lint front use.  The equivalence
gate in ``tests/core/test_fusion_equivalence.py`` requires zero findings
on every fused TPC-H plan.

Rule catalog:

======  =========  ===========================================================
rule    severity   meaning
======  =========  ===========================================================
FC01    error      a FusedOp contains a non-streaming stage (anything but
                   Filter/Project), or is empty
FC02    error      stage schemas do not chain (a stage's declared input
                   arity disagrees with its predecessor's output)
FC03    error      two adjacent unfused Filter/Project operators survive in
                   a fused pipeline (the pass missed a fusible run)
FC04    error      a hoisted residual filter lost its legality precondition
                   (a semi/anti or partitioned probe was stripped of its
                   post_filter)
FC05    error      flattening every FusedOp back to its stages does not
                   reproduce a schema-equivalent operator chain
======  =========  ===========================================================
"""

from __future__ import annotations

from ..core.operators.fused import FusedOp
from ..core.operators.join import HashJoinProbe, PartitionedHashJoinProbe
from ..core.operators.streaming import FilterOp, ProjectOp
from ..core.planner import PhysicalPlan, Pipeline
from .report import SEVERITY_ERROR, Finding

__all__ = ["FUSION_RULES", "verify_fused_plan"]

FUSION_RULES = {
    "FC01": "FusedOp contains a non-streaming stage or is empty",
    "FC02": "fused stage schemas do not chain",
    "FC03": "adjacent unfused Filter/Project operators in a fused pipeline",
    "FC04": "ineligible probe stripped of its residual filter",
    "FC05": "flattened fused chain is not schema-equivalent",
}


def verify_fused_plan(physical: PhysicalPlan) -> list[Finding]:
    """Statically verify a fusion-compiled physical plan; returns findings
    (empty list = the fused plan is structurally sound)."""
    findings: list[Finding] = []
    for pipeline in physical.pipelines:
        _check_pipeline(pipeline, findings)
    return findings


def _check_pipeline(pipeline: Pipeline, findings: list[Finding]) -> None:
    site = f"P{pipeline.pid}"
    ops = pipeline.operators

    # FC03: the pass promises *maximal* runs — two adjacent plain
    # streaming operators mean a fusible pair survived unfused.  (A single
    # unfused Filter/Project is legal: expression-compile fallback keeps
    # whole runs in interpreted form.)
    for prev, op in zip(ops, ops[1:]):
        prev_plain = type(prev) in (FilterOp, ProjectOp)
        op_plain = type(op) in (FilterOp, ProjectOp)
        if prev_plain and op_plain and not _fallback_run(prev, op):
            findings.append(
                Finding(
                    "FC03",
                    SEVERITY_ERROR,
                    f"adjacent unfused {prev.describe()} and {op.describe()}",
                    site,
                )
            )

    for pos, op in enumerate(ops):
        opsite = f"{site}[{pos}]"
        if isinstance(op, FusedOp):
            _check_fused_op(op, opsite, findings)
        elif isinstance(op, PartitionedHashJoinProbe):
            # FC04 (partitioned side): the pass must never touch these —
            # their residual filter runs per leaf before re-coalescing.
            # Nothing to check structurally beyond their type surviving.
            continue
        elif isinstance(op, HashJoinProbe):
            if op.post_filter is None and op.join_type in ("semi", "anti"):
                # A semi/anti probe legitimately has no residual only if
                # the logical plan had none; the fusion pass cannot prove
                # that here, but it never hoists semi/anti residuals, so a
                # stripped one would have to be followed by the hoisted
                # filter — which is exactly the illegal shape.
                nxt = ops[pos + 1] if pos + 1 < len(ops) else None
                if _starts_with_filter(nxt):
                    findings.append(
                        Finding(
                            "FC04",
                            SEVERITY_ERROR,
                            f"{op.join_type} join probe followed by a hoisted "
                            "filter — semi/anti residuals are not hoistable",
                            opsite,
                        )
                    )

    # FC05: expanding fused regions must yield a chain whose end schema
    # matches the fused chain's declared output.
    flat = []
    for op in ops:
        flat.extend(op.stages if isinstance(op, FusedOp) else [op])
    if ops and flat:
        try:
            fused_out = ops[-1].output_schema()
            flat_out = flat[-1].output_schema()
        except Exception as exc:  # schema derivation itself broke
            findings.append(
                Finding("FC05", SEVERITY_ERROR, f"schema derivation failed: {exc}", site)
            )
            return
        if fused_out.dtypes() != flat_out.dtypes():
            findings.append(
                Finding(
                    "FC05",
                    SEVERITY_ERROR,
                    f"fused output schema {fused_out.dtypes()} != flattened "
                    f"{flat_out.dtypes()}",
                    site,
                )
            )


def _check_fused_op(op: FusedOp, site: str, findings: list[Finding]) -> None:
    if not op.stages:
        findings.append(Finding("FC01", SEVERITY_ERROR, "empty FusedOp", site))
        return
    for stage in op.stages:
        if not isinstance(stage, (FilterOp, ProjectOp)):
            findings.append(
                Finding(
                    "FC01",
                    SEVERITY_ERROR,
                    f"non-streaming stage {type(stage).__name__} inside FusedOp",
                    site,
                )
            )
            return
    # FC02: schemas must chain — a filter passes its input schema through;
    # a project starts a new one.  Compare arities at each boundary where
    # the stage declares its input.
    prev_schema = None
    for idx, stage in enumerate(op.stages):
        if isinstance(stage, FilterOp):
            declared = stage.input_schema
            if prev_schema is not None and declared.dtypes() != prev_schema.dtypes():
                findings.append(
                    Finding(
                        "FC02",
                        SEVERITY_ERROR,
                        f"stage {idx} declares input {declared.dtypes()} but "
                        f"predecessor produces {prev_schema.dtypes()}",
                        f"{site}.stage{idx}",
                    )
                )
        prev_schema = stage.output_schema()


def _fallback_run(*ops) -> bool:
    """True when an unfused streaming run is the expression-compile
    fallback (one of its expressions cannot be lowered) — FusedOp's own
    constructor is the oracle."""
    from ..core.expr_eval import UnsupportedExpressionError

    try:
        FusedOp(list(ops))
    except UnsupportedExpressionError:
        return True
    return False


def _starts_with_filter(op) -> bool:
    if isinstance(op, FilterOp):
        return True
    return isinstance(op, FusedOp) and isinstance(op.stages[0], FilterOp)
