"""Codebase invariant linter (analysis front 2)."""

from .framework import LintRule, ModuleInfo, lint_paths, lint_tree
from .rules import (
    LINT_RULES,
    RmmOwnerPairingRule,
    StatelessOperatorRule,
    TracerGuardRule,
    UnseededRandomRule,
    WallClockRule,
    default_rules,
)

__all__ = [
    "LintRule",
    "ModuleInfo",
    "lint_paths",
    "lint_tree",
    "LINT_RULES",
    "default_rules",
    "WallClockRule",
    "UnseededRandomRule",
    "RmmOwnerPairingRule",
    "StatelessOperatorRule",
    "TracerGuardRule",
]
