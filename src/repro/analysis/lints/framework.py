"""Front 2 scaffolding: an AST-based lint framework for repo invariants.

The rules in :mod:`repro.analysis.lints.rules` enforce conventions the
scheduler and fault layers *depend on* but that generic linters cannot
know about (sim-clock only, seeded RNG, paired RMM owner release,
stateless operators, zero-cost tracing).  The framework keeps each rule
small: it parses every module once, resolves import aliases to
canonical dotted names, attaches parent links for ancestor queries, and
handles ``# lint: allow=<rule-id>`` suppression comments.

Run it as ``python -m repro.analysis lint`` or through the pytest suite
in ``tests/analysis``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..report import Finding

__all__ = ["LintRule", "ModuleInfo", "lint_paths", "lint_tree", "resolve_dotted"]

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow=([A-Za-z0-9_,\s]+)")


@dataclass
class ModuleInfo:
    """One parsed module plus the lookup tables rules need."""

    path: Path
    relpath: str  # path relative to the lint root, for finding sites
    tree: ast.Module
    source: str
    aliases: dict[str, str] = field(default_factory=dict)
    _allowed: dict[int, set[str]] | None = None

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ModuleInfo":
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        _attach_parents(tree)
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        return cls(path, rel, tree, source, _import_aliases(tree))

    def site(self, node: ast.AST) -> str:
        return f"{self.relpath}:{getattr(node, 'lineno', 0)}"

    def allow_set(self, lineno: int) -> set[str]:
        """Rule ids suppressed on ``lineno`` via ``# lint: allow=...``."""
        if self._allowed is None:
            table: dict[int, set[str]] = {}
            for n, line in enumerate(self.source.splitlines(), start=1):
                m = _ALLOW_RE.search(line)
                if m:
                    table[n] = {r.strip() for r in m.group(1).split(",")}
            self._allowed = table
        return self._allowed.get(lineno, set())

    def resolve_call(self, node: ast.Call) -> str | None:
        """Canonical dotted name of the called function, or ``None``."""
        return resolve_dotted(node.func, self.aliases)


class LintRule:
    """Base class: subclasses set ``rule_id``/``description`` and yield
    :class:`~repro.analysis.report.Finding` objects from ``check``."""

    rule_id: str = "RR00"
    description: str = ""
    severity: str = "error"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(self.rule_id, self.severity, message, module.site(node))


def lint_paths(
    root: Path, rules: Sequence[LintRule], paths: Iterable[Path] | None = None
) -> list[Finding]:
    """Run ``rules`` over every ``*.py`` under ``root`` (or ``paths``)."""
    findings: list[Finding] = []
    targets = sorted(paths) if paths is not None else sorted(root.rglob("*.py"))
    for path in targets:
        findings.extend(_check_module(ModuleInfo.parse(path, root), rules))
    return findings


def lint_tree(
    source: str, rules: Sequence[LintRule], relpath: str = "<memory>"
) -> list[Finding]:
    """Lint one in-memory module — the fixture-test entry point."""
    tree = ast.parse(source)
    _attach_parents(tree)
    module = ModuleInfo(Path(relpath), relpath, tree, source, _import_aliases(tree))
    return _check_module(module, rules)


def _check_module(module: ModuleInfo, rules: Sequence[LintRule]) -> list[Finding]:
    findings = []
    for rule in rules:
        for f in rule.check(module):
            lineno = int(f.site.rsplit(":", 1)[-1] or 0)
            if rule.rule_id not in module.allow_set(lineno):
                findings.append(f)
    return findings


# -- AST helpers ---------------------------------------------------------------


def _attach_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    cur = getattr(node, "_lint_parent", None)
    while cur is not None:
        yield cur
        cur = getattr(cur, "_lint_parent", None)


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to canonical dotted paths.

    ``import numpy as np`` -> ``np: numpy``;
    ``from datetime import datetime as dt`` -> ``dt: datetime.datetime``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to a canonical dotted name.

    ``np.random.default_rng`` with ``np -> numpy`` resolves to
    ``numpy.random.default_rng``.  Chains not rooted at a plain name
    (method calls on objects) resolve to ``None``.
    """
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    parts.reverse()
    head = aliases.get(parts[0], parts[0])
    return ".".join([head] + parts[1:])
