"""Repo-specific invariant lints for ``src/repro``.

Each rule encodes a convention other subsystems *depend on*:

======  ======================================================================
rule    invariant
======  ======================================================================
RR01    no wall clock: simulated time comes from ``SimClock`` only —
        ``time.time()``/``datetime.now()``/``sleep`` break determinism and
        the two-timeline serving model
RR02    no unseeded / global-state RNG: every random draw must come from an
        explicitly seeded ``random.Random(seed)`` or
        ``numpy.random.default_rng(seed)`` so runs are reproducible
RR03    RMM owner pairing: a module that acquires owned pool allocations or
        reservations must also release them (``free`` / ``release_owner`` /
        ``unreserve``) — leaked owners poison the serving pool
RR04    stateless operators: classes in ``core/operators`` must not assign
        mutable instance state outside ``__init__``; per-query state lives
        in the executor-owned state dict so operators can be re-run and
        shared across retries
RR05    zero-cost tracing: every ``record_span`` call must sit under an
        ``if <tracer>.enabled`` guard, and ``tracer`` parameter defaults
        must be ``NULL_TRACER`` (or ``None``) so the disabled path costs
        nothing
RR06    transfers go through the stream API: outside ``gpu/device.py`` and
        ``gpu/clock.py``, no direct ``clock.advance``/``advance_to`` with a
        transfer category — copies must use ``Device.htod``/``dtoh``/
        ``htod_async``/``wait_copies`` so stream accounting (busy vs
        exposed time, overlap efficiency) stays correct
RR07    device allocations go through the RMM owner API: outside
        ``gpu/device.py`` and ``gpu/rmm.py``, no direct
        ``processing_pool.allocate`` / ``caching_region.allocate`` —
        allocations must use ``Device.new_buffer`` so owner tagging,
        fault injection, and memory-pressure callbacks all apply
RR08    published tables are frozen: once a ``Table``/``GTable`` is handed
        to the buffer manager or fragment store (``get_table`` /
        ``prefetch`` / ``put_fragment``), the publishing scope must not
        mutate it — cached entries and spill fragments alias the object,
        so later in-place writes corrupt what other queries read back
======  ======================================================================

Suppress a deliberate exception with ``# lint: allow=<rule-id>`` on the
flagged line.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..report import Finding
from .framework import LintRule, ModuleInfo, ancestors

__all__ = [
    "WallClockRule",
    "UnseededRandomRule",
    "RmmOwnerPairingRule",
    "StatelessOperatorRule",
    "TracerGuardRule",
    "TransferStreamRule",
    "PoolOwnerApiRule",
    "PublishedTableMutationRule",
    "LINT_RULES",
    "default_rules",
]

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(LintRule):
    rule_id = "RR01"
    description = "no wall-clock reads under src/repro (SimClock only)"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call(node)
            if name in _WALL_CLOCK:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock call {name}() — simulated time must come "
                    "from SimClock",
                )


# numpy.random entry points that are fine *when seeded*.
_SEEDABLE_RNG = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
    }
)


class UnseededRandomRule(LintRule):
    rule_id = "RR02"
    description = "no unseeded or global-state RNG under src/repro"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call(node)
            if name is None:
                continue
            if name in _SEEDABLE_RNG:
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        f"{name}() without a seed — pass an explicit seed "
                        "for reproducible runs",
                    )
            elif name.startswith("random.") or name.startswith("numpy.random."):
                yield self.finding(
                    module,
                    node,
                    f"global-state RNG {name}() — draw from a seeded "
                    "random.Random / numpy.random.default_rng instance",
                )


_RELEASERS = frozenset({"free", "release_owner", "unreserve"})


class RmmOwnerPairingRule(LintRule):
    rule_id = "RR03"
    description = "owned rmm allocations/reservations need a release path"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        # The allocator implementation itself (defines release_owner) is
        # where the pairing bottoms out — skip it.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and node.name in _RELEASERS:
                return
        acquires: list[ast.Call] = []
        releases = False
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            attr = node.func.attr
            if attr == "allocate" and any(k.arg == "owner" for k in node.keywords):
                acquires.append(node)
            elif attr == "reserve" and (node.args or node.keywords):
                acquires.append(node)
            elif attr in _RELEASERS:
                releases = True
        if acquires and not releases:
            for node in acquires:
                yield self.finding(
                    module,
                    node,
                    "owned pool acquisition with no free()/release_owner()/"
                    "unreserve() anywhere in this module — leaked owners "
                    "poison the serving pool",
                )


class StatelessOperatorRule(LintRule):
    rule_id = "RR04"
    description = "operators keep no mutable instance state outside __init__"

    # Only operator modules are in scope; plan-time configuration set in
    # __init__ is fine, anything assigned later is per-query state that
    # belongs in the executor-owned state dict.
    scope_fragment = "core/operators"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        rel = module.relpath.replace("\\", "/")
        if self.scope_fragment not in rel and rel != "<memory>":
            return
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not any(_base_name(b).endswith("Operator") for b in cls.bases):
                continue
            for method in cls.body:
                if (
                    not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
                    or method.name == "__init__"
                ):
                    continue
                for node in ast.walk(method):
                    for target in _assign_targets(node):
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            yield self.finding(
                                module,
                                node,
                                f"{cls.name}.{method.name} assigns "
                                f"self.{target.attr} — operator state must "
                                "live in the executor-owned state dict",
                            )


class TracerGuardRule(LintRule):
    rule_id = "RR05"
    description = "record_span guarded by .enabled; tracer defaults NULL_TRACER"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        rel = module.relpath.replace("\\", "/")
        in_obs = "obs/" in rel  # the tracer implementation itself
        for node in ast.walk(module.tree):
            if (
                not in_obs
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "record_span"
                and not _has_enabled_guard(node)
            ):
                yield self.finding(
                    module,
                    node,
                    "record_span() call without an `if <tracer>.enabled` "
                    "guard — tracing must be zero-cost when disabled",
                )
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node)
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "tracer"
                and node.value is not None
                and not _is_null_tracer_default(node.value)
            ):
                yield self.finding(
                    module,
                    node,
                    "tracer field default must be NULL_TRACER (or None)",
                )

    def _check_defaults(
        self, module: ModuleInfo, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        args = fn.args.args + fn.args.kwonlyargs
        defaults = list(fn.args.defaults) + list(fn.args.kw_defaults)
        # Positional defaults align to the *tail* of the positional args.
        pos_offset = len(fn.args.args) - len(fn.args.defaults)
        for i, arg in enumerate(args):
            if arg.arg != "tracer":
                continue
            if i < len(fn.args.args):
                j = i - pos_offset
                default = fn.args.defaults[j] if 0 <= j < len(fn.args.defaults) else None
            else:
                default = fn.args.kw_defaults[i - len(fn.args.args)]
            if default is not None and not _is_null_tracer_default(default):
                yield self.finding(
                    module,
                    default,
                    f"{fn.name}(tracer=...) default must be NULL_TRACER "
                    "(or None), so the disabled path costs nothing",
                )


_TRANSFER_CATEGORIES = frozenset({"transfer", "transfer-wait"})
# The only modules allowed to charge transfer time directly: the clock
# (stream implementation) and the device (sync/async transfer primitives).
_TRANSFER_MODULES = ("gpu/device.py", "gpu/clock.py")


class TransferStreamRule(LintRule):
    rule_id = "RR06"
    description = "transfer time is charged only via the Device/stream API"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        rel = module.relpath.replace("\\", "/")
        if rel.endswith(_TRANSFER_MODULES):
            return
        for node in ast.walk(module.tree):
            if (
                not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Attribute)
                or node.func.attr not in ("advance", "advance_to")
            ):
                continue
            category = None
            for kw in node.keywords:
                if kw.arg == "category":
                    category = kw.value
            if category is None and len(node.args) >= 2:
                category = node.args[1]
            if (
                isinstance(category, ast.Constant)
                and category.value in _TRANSFER_CATEGORIES
            ):
                yield self.finding(
                    module,
                    node,
                    f"direct clock advance with category "
                    f"{category.value!r} — transfers must go through "
                    "Device.htod/dtoh/htod_async/wait_copies so stream "
                    "accounting stays correct",
                )


# Device memory regions whose raw allocate() is off limits elsewhere.
_REGION_ATTRS = frozenset({"processing_pool", "caching_region"})
# The device (owner API implementation) and the allocator itself.
_ALLOC_MODULES = ("gpu/device.py", "gpu/rmm.py")


class PoolOwnerApiRule(LintRule):
    rule_id = "RR07"
    description = "device allocations go through the RMM owner API"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        rel = module.relpath.replace("\\", "/")
        if rel.endswith(_ALLOC_MODULES):
            return
        for node in ast.walk(module.tree):
            if (
                not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Attribute)
                or node.func.attr != "allocate"
            ):
                continue
            region = node.func.value
            if isinstance(region, ast.Attribute) and region.attr in _REGION_ATTRS:
                yield self.finding(
                    module,
                    node,
                    f"direct {region.attr}.allocate() — device allocations "
                    "must go through Device.new_buffer (the RMM owner API) "
                    "so owner tagging, fault injection, and memory-pressure "
                    "callbacks apply",
                )


# Modules forming the fused execution path: the compiled-expression layer
# and the FusedOp driver.  The kernel helpers in ``repro.kernels`` own all
# device-buffer acquisition (``GColumn.from_array`` -> ``Device.new_buffer``);
# fused code must consume kernel *results*, never mint device storage of its
# own, or fused traffic escapes buffer-manager accounting.
_FUSED_MODULES = ("core/operators/fused.py", "core/expr_compile.py")
# Attribute calls that acquire raw device storage.
_FUSED_BANNED_METHODS = frozenset({"allocate", "new_buffer", "from_array"})
# Bare constructors that wrap freshly minted device storage.
_FUSED_BANNED_CTORS = frozenset({"GColumn", "Allocation"})


class FusedBufferDisciplineRule(LintRule):
    rule_id = "RR09"
    description = "fused kernels obtain buffers only through the buffer-manager API"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        rel = module.relpath.replace("\\", "/")
        if not rel.endswith(_FUSED_MODULES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FUSED_BANNED_METHODS
            ):
                yield self.finding(
                    module,
                    node,
                    f"direct .{node.func.attr}() in the fused execution path "
                    "— fused stages must obtain device storage from kernel "
                    "results (repro.kernels routes every allocation through "
                    "Device.new_buffer) so buffer-manager accounting sees "
                    "all fused traffic",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in _FUSED_BANNED_CTORS
            ):
                yield self.finding(
                    module,
                    node,
                    f"direct {node.func.id}(...) construction in the fused "
                    "execution path — build columns via the kernel helpers, "
                    "which allocate through the buffer-manager API",
                )


# Buffer-manager calls that *publish* a table: (method name -> positional
# index of the table argument, plus the keyword it may arrive under).
_PUBLISHERS = {
    "get_table": (1, "host_table"),
    "prefetch": (1, "host_table"),
    "put_fragment": (1, "gtable"),
}
# In-place methods whose call on a published object (or anything reached
# through it) rewrites state that cache entries / fragments alias.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "add",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "fill",
        "resize",
        "put",
    }
)
# The store implementation itself owns its entries and may mutate them.
_PUBLISH_MODULES = ("core/buffer_manager.py",)


class PublishedTableMutationRule(LintRule):
    rule_id = "RR08"
    description = "no mutation of a Table/GTable after publication to the store"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        rel = module.relpath.replace("\\", "/")
        if rel.endswith(_PUBLISH_MODULES):
            return
        for fn in ast.walk(module.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, fn)

    def _check_function(
        self, module: ModuleInfo, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # Lexical pass in source order: track objects from the statement
        # that publishes them; rebinding the name releases the tracking.
        events = sorted(
            (
                node
                for node in ast.walk(fn)
                if isinstance(node, (ast.Call, ast.Assign, ast.AugAssign, ast.AnnAssign))
            ),
            key=lambda n: (n.lineno, n.col_offset),
        )
        published: dict[str, ast.Call] = {}
        for node in events:
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, published)
                continue
            for target in _assign_targets(node):
                if isinstance(target, ast.Name):
                    # Rebinding the root name: a fresh object, stop tracking.
                    for path in [p for p in published if _rooted_at(p, target.id)]:
                        del published[path]
                    continue
                path = _access_path(target)
                if path is None:
                    continue
                hit = _published_prefix(path, published)
                if hit is None:
                    continue
                if isinstance(target, ast.Attribute) and path == hit:
                    # `obj.attr = ...` where obj.attr itself was published:
                    # rebinds the slot, does not touch the published object.
                    del published[hit]
                    continue
                yield self.finding(
                    module,
                    node,
                    f"write to {path} after it was published to the buffer "
                    "manager / fragment store — cached entries alias the "
                    "object; build a new Table instead of mutating in place",
                )

    def _check_call(
        self, module: ModuleInfo, node: ast.Call, published: dict[str, ast.Call]
    ) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        if attr in _PUBLISHERS:
            pos, kw_name = _PUBLISHERS[attr]
            arg: ast.AST | None = None
            if len(node.args) > pos:
                arg = node.args[pos]
            else:
                for kw in node.keywords:
                    if kw.arg == kw_name:
                        arg = kw.value
            path = _access_path(arg) if arg is not None else None
            if path is not None:
                published[path] = node
            return
        if attr in _MUTATOR_METHODS:
            path = _access_path(node.func.value)
            if path is None:
                return
            hit = _published_prefix(path, published)
            if hit is not None:
                yield self.finding(
                    module,
                    node,
                    f"{path}.{attr}() mutates {hit} after it was published "
                    "to the buffer manager / fragment store — cached entries "
                    "alias the object; build a new Table instead",
                )


def _access_path(node: ast.AST) -> str | None:
    """Dotted root path of an attribute/subscript chain (``t.columns[0]``
    -> ``t.columns``), or ``None`` when not rooted at a plain name."""
    parts: list[str] = []
    cur = node
    while True:
        if isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        else:
            break
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _rooted_at(path: str, root: str) -> bool:
    return path == root or path.startswith(root + ".")


def _published_prefix(path: str, published: dict[str, ast.Call]) -> str | None:
    for tracked in published:
        if _rooted_at(path, tracked):
            return tracked
    return None


def _has_enabled_guard(node: ast.AST) -> bool:
    for anc in ancestors(node):
        if isinstance(anc, ast.If) and any(
            isinstance(n, ast.Attribute) and n.attr == "enabled"
            for n in ast.walk(anc.test)
        ):
            return True
    return False


def _is_null_tracer_default(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and node.value is None:
        return True
    if isinstance(node, ast.Name) and node.id == "NULL_TRACER":
        return True
    if isinstance(node, ast.Attribute) and node.attr == "NULL_TRACER":
        return True
    # dataclasses.field(default=..., repr=False): judge the wrapped default.
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "field"
    ):
        for kw in node.keywords:
            if kw.arg == "default":
                return _is_null_tracer_default(kw.value)
            if kw.arg == "default_factory":
                return (
                    isinstance(kw.value, ast.Name) and kw.value.id == "NullTracer"
                )
        return True  # no default: caller must pass a tracer explicitly
    return False


def _base_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _assign_targets(node: ast.AST):
    if isinstance(node, ast.Assign):
        return node.targets
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


LINT_RULES = {
    "RR01": WallClockRule,
    "RR02": UnseededRandomRule,
    "RR03": RmmOwnerPairingRule,
    "RR04": StatelessOperatorRule,
    "RR05": TracerGuardRule,
    "RR06": TransferStreamRule,
    "RR07": PoolOwnerApiRule,
    "RR08": PublishedTableMutationRule,
    "RR09": FusedBufferDisciplineRule,
}


def default_rules() -> list[LintRule]:
    return [cls() for cls in LINT_RULES.values()]
