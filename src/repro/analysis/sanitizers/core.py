"""The runtime sanitizer: shadow-state checks over one engine's run.

A :class:`Sanitizer` attaches to a device (clock + RMM pool) and its
buffer manager through ``None``-default hook attributes — the same
pattern as the fault injector and the null tracer, so a detached run
pays nothing and an attached run only *observes*.  Checks never advance
the simulated clock and never change control flow; the hypothesis suite
asserts the observer effect is exactly zero.

Three check families:

* **happens-before** (SA01–SA04): every consumption of async-copied
  bytes must be covered by a stream sync edge at or past the copy's
  completion event;
* **memory** (SA05–SA08): the shadow ledger of pool allocations and the
  recomputed ground truth of cache/fragment tiers must agree with the
  live counters, and nothing may leak past end-of-run cleanup;
* **determinism** (SA09–SA10): see :mod:`.determinism`.

Typical use::

    engine = SiriusEngine.for_spec(GH200, sanitize=True, overlap=True)
    engine.execute(plan, catalog)
    report = engine.sanitizer.report("tpch")
    assert report.ok, report.to_json()
"""

from __future__ import annotations

from contextlib import contextmanager

from ..report import Finding
from .report import SanitizerReport
from .rules import SA_SEVERITY
from .shadow import HBGraph, ShadowLedger

__all__ = ["Sanitizer", "sanitized"]

_COPY_STREAM = "copy"


class Sanitizer:
    """Shadow-state observer for one device + buffer manager."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        self.hb = HBGraph()
        self.ledger = ShadowLedger()
        self.checks_run = 0
        # Copy-stream event mirrors, keyed by cache-entry / fragment name:
        #   _pending: prefetched entries no consumer has read yet;
        #   _consumed: entries read mid-pipeline whose tail chunks must be
        #     joined by the pipeline-end sync point;
        #   _fragment_writes: outstanding demotion (spill) writes.
        self._pending: dict[str, float] = {}
        self._consumed: dict[str, float] = {}
        self._fragment_writes: dict[str, float] = {}
        # The pool-vs-ledger comparison is only sound once the ledger has
        # observed a whole pool generation from its reset.
        self._ledger_synced = False
        self._attached: list[tuple[object, object | None]] = []

    # -- findings --------------------------------------------------------------

    def _finding(self, rule: str, message: str, site: str) -> None:
        self.findings.append(Finding(rule, SA_SEVERITY[rule], message, site))

    @property
    def ok(self) -> bool:
        return not self.findings

    def report(self, suite: str = "adhoc") -> SanitizerReport:
        counters = {"checks_run": self.checks_run, "findings": len(self.findings)}
        counters.update(self.hb.stats())
        counters.update(self.ledger.stats())
        counters["stream_events"] = counters.get("hb_nodes", 0)
        return SanitizerReport(
            suite=suite, findings=list(self.findings), counters=counters
        )

    # -- attachment ------------------------------------------------------------

    def attach(self, device, buffer_manager=None) -> None:
        """Wire this sanitizer into a device's clock and pool (and
        optionally its buffer manager)."""
        device.attach_sanitizer(self)
        if buffer_manager is not None:
            buffer_manager.sanitizer = self
        self._attached.append((device, buffer_manager))

    def detach(self) -> None:
        for device, buffer_manager in self._attached:
            device.detach_sanitizer()
            if buffer_manager is not None:
                buffer_manager.sanitizer = None
        self._attached.clear()

    # -- stream hooks (fed by StreamClock) ---------------------------------------

    def on_stream_issue(self, stream: str, start: float, end: float) -> None:
        self.hb.on_issue(stream, start, end)

    def on_stream_wait(self, stream: str, until: float) -> None:
        self.hb.on_wait(stream, until)

    # -- buffer-manager hooks ----------------------------------------------------

    def on_prefetch(self, entry, event: float) -> None:
        """A fully-async cold load was issued for ``entry``."""
        self._pending[entry.name] = event

    def on_entry_read(self, entry, event: float | None) -> None:
        """A consumer received ``entry``'s device table.

        ``event`` is the full-completion timestamp of an overlapped load
        being consumed (prefetch hit or cold overlapped load), ``None``
        for plain hot hits.
        """
        self.checks_run += 1
        name = entry.name
        if entry.ready_at > 0.0 and not self.hb.covered(_COPY_STREAM, entry.ready_at):
            self._finding(
                "SA01",
                f"entry {name!r} read at ready_at={entry.ready_at:.9f} but the "
                f"host's copy-stream sync frontier is only "
                f"{self.hb.synced_frontier(_COPY_STREAM):.9f} — no "
                "happens-before edge covers the first chunk",
                f"buffer_manager.get_table:{name}",
            )
        self._pending.pop(name, None)
        if event is not None:
            self._consumed[name] = event
        self._check_gtable_buffers(entry.gtable, f"buffer_manager.get_table:{name}")

    def on_entry_release(self, entry, op: str) -> None:
        """``entry`` is about to be spilled or dropped (device bytes freed)."""
        self.checks_run += 1
        name = entry.name
        events = [
            e
            for e in (self._pending.get(name), self._consumed.get(name))
            if e is not None
        ]
        for event in events:
            if not self.hb.covered(_COPY_STREAM, event):
                self._finding(
                    "SA02",
                    f"{op} of entry {name!r} with an outstanding copy-stream "
                    f"chunk (event {event:.9f} past sync frontier "
                    f"{self.hb.synced_frontier(_COPY_STREAM):.9f}) — the DMA "
                    "would write into freed memory",
                    f"buffer_manager._{op}:{name}",
                )
        self._pending.pop(name, None)
        self._consumed.pop(name, None)

    def on_pipeline_end(self, site: str) -> None:
        """The consuming pipeline's sink is about to finalise; every
        overlapped load it consumed must have been joined."""
        self.checks_run += 1
        for name, event in list(self._consumed.items()):
            if self.hb.covered(_COPY_STREAM, event):
                del self._consumed[name]
            else:
                self._finding(
                    "SA03",
                    f"pipeline finalised while entry {name!r}'s overlapped "
                    f"load (event {event:.9f}) was still landing — "
                    "complete_loads/wait_copies missing before the sink",
                    site,
                )
                del self._consumed[name]

    # -- fragment hooks ----------------------------------------------------------

    def on_fragment_spill(self, name: str, event: float) -> None:
        self._fragment_writes[name] = event

    def on_fragment_read(self, frag) -> None:
        self.checks_run += 1
        event = self._fragment_writes.get(frag.name)
        if event is not None:
            if self.hb.covered(_COPY_STREAM, event):
                del self._fragment_writes[frag.name]
            else:
                self._finding(
                    "SA04",
                    f"fragment {frag.name!r} read before its demotion write "
                    f"(event {event:.9f}) was joined — the host copy is not "
                    "yet authoritative",
                    f"buffer_manager.get_fragment:{frag.name}",
                )
                del self._fragment_writes[frag.name]
        if frag.gtable is not None:
            self._check_gtable_buffers(
                frag.gtable, f"buffer_manager.get_fragment:{frag.name}"
            )

    def on_fragment_drop(self, name: str) -> None:
        # Dropping a pinned fragment with an in-flight demotion write
        # models a stream-ordered release (the staging buffer is retired
        # behind the write, never reused before it) — not a race.
        self._fragment_writes.pop(name, None)

    # -- pool hooks (fed by PoolAllocator) ---------------------------------------

    def on_pool_alloc(self, allocation) -> None:
        self.ledger.on_alloc(
            allocation.alloc_id,
            allocation.size,
            allocation.owner,
            allocation.generation,
        )

    def on_pool_free(self, pool, allocation) -> None:
        self.checks_run += 1
        if allocation.generation != pool.generation:
            return  # stale handle from before a reset: legitimate no-op
        if allocation.alloc_id and allocation.alloc_id in pool._reaped:
            return  # owner already reclaimed wholesale: legitimate no-op
        if not self.ledger.on_free(allocation.alloc_id) and self._ledger_synced:
            self._finding(
                "SA06",
                f"double free of allocation id={allocation.alloc_id} "
                f"(offset {allocation.offset}, {allocation.size} bytes, "
                f"owner {allocation.owner!r})",
                f"pool.free:gen{pool.generation}",
            )

    def on_pool_release_owner(self, owner) -> None:
        self.ledger.on_release_owner(owner)

    def on_pool_reset(self) -> None:
        self.ledger.on_reset()
        self._ledger_synced = True

    # -- end-of-scope checks -----------------------------------------------------

    def check_drift(self, buffer_manager, site: str) -> None:
        """SA08: live counters vs the shadow ledger / recomputed truth."""
        self.checks_run += 1
        bm = buffer_manager
        device = bm.device
        pool = device.processing_pool
        if self._ledger_synced and pool.in_use != self.ledger.live_bytes():
            self._finding(
                "SA08",
                f"pool in_use={pool.in_use} disagrees with the shadow ledger "
                f"({self.ledger.live_bytes()} bytes across "
                f"{len(self.ledger.live)} live allocations)",
                site,
            )
        pinned = sum(
            e.nbytes for e in bm._cache.values() if e.location == "pinned"
        )
        if bm.pinned_host_bytes != pinned:
            self._finding(
                "SA08",
                f"pinned_host_bytes={bm.pinned_host_bytes} but spilled cache "
                f"entries account for {pinned} bytes",
                site,
            )
        frag_pinned = sum(
            f.nbytes for f in bm._fragments.values() if f.location == "pinned"
        )
        if bm.fragment_pinned_bytes != frag_pinned:
            self._finding(
                "SA08",
                f"fragment_pinned_bytes={bm.fragment_pinned_bytes} but pinned "
                f"fragments account for {frag_pinned} bytes",
                site,
            )
        frag_disk = sum(
            f.nbytes for f in bm._fragments.values() if f.location == "disk"
        )
        if bm.disk_fragment_bytes != frag_disk:
            self._finding(
                "SA08",
                f"disk_fragment_bytes={bm.disk_fragment_bytes} but disk "
                f"fragments account for {frag_disk} bytes",
                site,
            )
        caching = 0
        for entry in bm._cache.values():
            if entry.location == "device" and entry.gtable is not None:
                for col in entry.gtable.columns:
                    caching += col.buffer.nbytes
                    if col.validity is not None:
                        caching += col.validity.nbytes
        if device.caching_region.used != caching:
            self._finding(
                "SA08",
                f"caching_region.used={device.caching_region.used} but "
                f"device-resident cache entries account for {caching} bytes",
                site,
            )
        if bm.compressed_saved_bytes < 0 or (
            not bm.compress_cache and bm.compressed_saved_bytes != 0
        ):
            self._finding(
                "SA08",
                f"compressed_saved_bytes={bm.compressed_saved_bytes} with "
                f"compress_cache={bm.compress_cache}",
                site,
            )

    def check_namespace_dropped(self, buffer_manager, ns: str) -> None:
        """SA05 at ``drop_namespace``: nothing of the namespace survives."""
        self.checks_run += 1
        prefix = ns + "/"
        leaked = [n for n in buffer_manager._fragments if n.startswith(prefix)]
        if leaked:
            self._finding(
                "SA05",
                f"fragments {leaked} survive drop_namespace({ns!r})",
                f"buffer_manager.drop_namespace:{ns}",
            )

    def check_query_end(self, engine, site: str) -> None:
        """End-of-query checks for the single-query engine path: fragment
        store empty (the run retired its partitions) + counter drift."""
        self.checks_run += 1
        bm = engine.buffer_manager
        if bm._fragments:
            self._finding(
                "SA05",
                f"fragments {list(bm._fragments)} survive query end "
                "(clear_fragments/drop_namespace missing)",
                site,
            )
        self.check_drift(bm, site)

    def check_end_run(self, engine, site: str) -> None:
        """End-of-serving-run checks: every owner released its pool bytes
        and no fragments survive (the per-owner reclamation discipline)."""
        self.checks_run += 1
        pool = engine.device.processing_pool
        if pool.in_use > 0:
            owners: dict = {}
            for offset, size in pool._live.items():
                owner = pool._owners.get(offset)
                owners[owner] = owners.get(owner, 0) + size
            detail = ", ".join(
                f"{owner!r}: {nbytes} bytes" for owner, nbytes in sorted(
                    owners.items(), key=lambda kv: repr(kv[0])
                )
            )
            self._finding(
                "SA05",
                f"processing pool holds {pool.in_use} bytes at end_run "
                f"({detail}) — release_owner missing",
                site,
            )
        bm = engine.buffer_manager
        if bm._fragments:
            self._finding(
                "SA05",
                f"fragments {list(bm._fragments)} survive end_run",
                site,
            )
        self.check_drift(bm, site)

    # -- helpers -----------------------------------------------------------------

    def _check_gtable_buffers(self, gtable, site: str) -> None:
        for col in gtable.columns:
            freed = col.buffer.is_freed or (
                col.validity is not None and col.validity.is_freed
            )
            if freed:
                self._finding(
                    "SA07",
                    "table handed to a consumer through freed device "
                    "buffers (use-after-free)",
                    site,
                )
                return


@contextmanager
def sanitized(engine):
    """Context manager: attach a fresh :class:`Sanitizer` to ``engine``
    for the scope, run the end-of-query checks on exit, and detach."""
    sanitizer = Sanitizer()
    sanitizer.attach(engine.device, engine.buffer_manager)
    previous = engine.sanitizer
    engine.sanitizer = sanitizer
    try:
        yield sanitizer
        sanitizer.check_query_end(engine, "sanitized:exit")
    finally:
        engine.sanitizer = previous
        sanitizer.detach()
