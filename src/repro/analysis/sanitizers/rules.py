"""The SA rule catalog: dynamic invariants the sanitizer layer enforces.

The static lints (RR01–RR08) prove properties of the *source*; the SA
rules prove properties of one *run*: happens-before on the copy stream,
allocation pairing in the RMM pool, ledger-vs-counter agreement, and
schedule-digest purity.  Each rule id names one failure mode so a CI
finding is immediately attributable.

======  ======================================================================
rule    dynamic invariant violated
======  ======================================================================
SA01    stream-read race: a cached entry was read before the host waited on
        its first-chunk ``ready_at`` event (no happens-before edge between
        the copy stream and the consumer)
SA02    in-flight release: an entry with outstanding copy-stream chunks was
        spilled or dropped without joining the stream first (the DMA would
        write into freed memory)
SA03    missing pipeline-end join: a pipeline finalised while overlapped
        loads it consumed were still landing (``complete_loads`` /
        ``wait_copies`` missing before the sink)
SA04    fragment race: a spilled fragment was promoted/read before its
        demotion write on the copy stream was joined (the host copy was not
        yet authoritative)
SA05    memory leak: an owner still held processing-pool bytes, or fragments
        survived, at ``end_run`` / query end / ``drop_namespace``
SA06    double release: a live-generation pool allocation was freed twice
SA07    use-after-free: a cached table or fragment was read through device
        buffers that were already freed
SA08    accounting drift: a live counter (pool in-use, pinned-host bytes,
        fragment tier bytes, caching-region bytes, compressed savings)
        disagrees with the shadow ledger's ground truth
SA09    nondeterminism source touched at runtime: a wall-clock or global-
        state RNG call fired during a sanitized run (the dynamic complement
        of lints RR01/RR02)
SA10    tie-break-sensitive schedule: a serving/fleet digest changed under a
        repeat run or a semantics-free perturbation (permuted policy
        tie-breaks, permuted mapping insertion order)
======  ======================================================================
"""

from __future__ import annotations

__all__ = ["SA_RULES", "SA_SEVERITY"]

SA_RULES = {
    "SA01": "stream-read race: entry read before its ready_at event was waited",
    "SA02": "in-flight entry spilled/dropped without joining its copy-stream chunks",
    "SA03": "pipeline finalised with consumed overlapped loads never joined",
    "SA04": "fragment read before its demotion copy-stream write was joined",
    "SA05": "memory leak: owner bytes or fragments survive end-of-run cleanup",
    "SA06": "double release of a live processing-pool allocation",
    "SA07": "use-after-free: table/fragment read through freed device buffers",
    "SA08": "accounting drift between live counters and the shadow ledger",
    "SA09": "wall-clock or global-RNG touch during a sanitized run",
    "SA10": "schedule digest not invariant under permuted tie-breaks/reruns",
}

# Every SA violation is an error: the clean suite must report zero
# findings, so any firing fails CI outright.
SA_SEVERITY = {rule: "error" for rule in SA_RULES}
