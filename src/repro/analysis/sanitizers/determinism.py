"""The determinism checker: schedules must be pure functions of seed.

The static lints RR01/RR02 prove the *source* never mentions wall clocks
or unseeded RNGs; this module is their dynamic complement.  It re-runs a
schedule under semantics-free perturbations and demands byte-identical
reports:

* **repeat run** — same inputs, fresh scheduler: any divergence means
  hidden mutable state leaks between runs;
* **permuted tie-breaks** — a :class:`PermutedPolicy` shuffles the
  candidate list before delegating to the real policy.  Every shipped
  policy picks by ``min(key=(..., seq))``, so candidate *order* is
  semantics-free; a policy whose choice depends on list position is
  tie-break-sensitive and its schedule is not a function of seed (SA10);
* **runtime traps** — a :class:`NondeterminismTrap` patches the
  module-level wall-clock and global-RNG entry points for the duration
  of a run and records any touch (SA09).

The hash-seed perturbation lives in CI (the ``sanitize`` job runs the
suite twice under different ``PYTHONHASHSEED`` values and diffs the
artifacts) because a process cannot change its own hash seed after
startup.
"""

from __future__ import annotations

import random

from ...sched.policies import SchedulingPolicy
from ..report import Finding
from .rules import SA_SEVERITY

__all__ = ["PermutedPolicy", "NondeterminismTrap", "DeterminismChecker"]

# Module-level entry points whose *call* during a sanitized run means the
# schedule consulted ambient state.  Seeded instances (random.Random,
# numpy.random.default_rng) are untouched — those are the sanctioned idiom.
_TRAPPED = {
    "time": (
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
    ),
    "random": (
        "random",
        "randint",
        "randrange",
        "uniform",
        "shuffle",
        "choice",
        "choices",
        "sample",
        "gauss",
        "getrandbits",
        "seed",
    ),
    "numpy.random": (
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "uniform",
        "shuffle",
        "permutation",
        "choice",
        "seed",
    ),
}


class PermutedPolicy(SchedulingPolicy):
    """Semantics-free wrapper: shuffle the candidate list, then delegate.

    Sound policies select by job *state* (``min`` with a total-order key
    ending in ``seq``), so the shuffle cannot change their choice.  A
    policy that keys on list position gives a different schedule, which
    is exactly what SA10 exists to catch.  ``name`` passes through so
    reports stay byte-identical when the wrapped policy is sound.
    """

    def __init__(self, inner, seed: int = 1):
        self.inner = inner
        self._rng = random.Random(seed)

    @property
    def name(self) -> str:
        return self.inner.name

    def select(self, candidates, vt):
        shuffled = list(candidates)
        self._rng.shuffle(shuffled)
        return self.inner.select(shuffled, vt)


class NondeterminismTrap:
    """Context manager recording every module-level wall-clock / global-
    RNG call made while active.

    Calls still work (they delegate to the saved real functions through a
    lookup table), so a trapped run completes normally and every touch is
    attributed instead of just the first.
    """

    def __init__(self) -> None:
        self.touched: list[str] = []
        self._real: dict[str, object] = {}
        self._patched: list[tuple[object, str, str]] = []

    def _modules(self) -> dict[str, object]:
        import importlib

        mods: dict[str, object] = {}
        for mod_name in _TRAPPED:
            try:
                mods[mod_name] = importlib.import_module(mod_name)
            except ImportError:  # numpy gated elsewhere; trap what exists
                continue
        return mods

    def _delegate(self, key: str):
        def call(*args, **kwargs):
            self.touched.append(key)
            return self._real[key](*args, **kwargs)

        return call

    def __enter__(self) -> "NondeterminismTrap":
        for mod_name, mod in self._modules().items():
            for fn_name in _TRAPPED[mod_name]:
                real = getattr(mod, fn_name, None)
                if real is None:
                    continue
                key = f"{mod_name}.{fn_name}"
                self._real[key] = real
                setattr(mod, fn_name, self._delegate(key))
                self._patched.append((mod, fn_name, key))
        return self

    def __exit__(self, *exc) -> None:
        for mod, fn_name, key in reversed(self._patched):
            setattr(mod, fn_name, self._real[key])
        self._patched.clear()
        return None


class DeterminismChecker:
    """Re-run a schedule under perturbations and compare digests.

    ``run`` is a zero-state factory: called with ``None`` it must build a
    **fresh** scheduler and return its report (anything exposing
    ``schedule_digest`` and ``to_json()``); called with a policy
    transform it must wrap the scheduler-level policy through it.  Each
    divergent perturbation yields exactly one SA10 finding; each trapped
    runtime touch yields one SA09 finding per distinct entry point.
    """

    def __init__(self, permutations: int = 3, trap: bool = True):
        if permutations < 1:
            raise ValueError("need at least one permutation seed")
        self.permutations = permutations
        self.trap = trap
        self.findings: list[Finding] = []
        self.runs = 0

    def _finding(self, rule: str, message: str, site: str) -> None:
        self.findings.append(Finding(rule, SA_SEVERITY[rule], message, site))

    def check(self, run, site: str = "determinism") -> list[Finding]:
        """Run baseline + repeat + permuted variants; returns the new
        findings (also accumulated on ``self.findings``)."""
        before = len(self.findings)
        if self.trap:
            with NondeterminismTrap() as trap:
                baseline = run(None)
            for key in sorted(set(trap.touched)):
                count = trap.touched.count(key)
                self._finding(
                    "SA09",
                    f"{key} called {count}x during a sanitized run — the "
                    "schedule consulted ambient state (use the device clock "
                    "/ a seeded generator instead)",
                    site,
                )
        else:
            baseline = run(None)
        self.runs += 1
        digest = baseline.schedule_digest
        artifact = baseline.to_json()

        repeat = run(None)
        self.runs += 1
        if repeat.schedule_digest != digest or repeat.to_json() != artifact:
            self._finding(
                "SA10",
                f"repeat run diverged: digest {digest} -> "
                f"{repeat.schedule_digest} — hidden mutable state survives "
                "across runs",
                site,
            )

        divergent: list[tuple[int, str]] = []
        for k in range(1, self.permutations + 1):
            permuted = run(lambda policy, k=k: PermutedPolicy(policy, seed=k))
            self.runs += 1
            if permuted.schedule_digest != digest:
                divergent.append((k, permuted.schedule_digest))
        if divergent:
            detail = ", ".join(f"seed {k}: {d}" for k, d in divergent)
            self._finding(
                "SA10",
                f"schedule digest {digest} changed under permuted candidate "
                f"tie-breaks ({detail}) — the policy depends on list "
                "position, not job state",
                site,
            )
        return self.findings[before:]

    @property
    def ok(self) -> bool:
        return not self.findings
