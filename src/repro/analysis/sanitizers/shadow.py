"""Shadow state mirrored by the sanitizer: a happens-before graph over
stream events and a ledger of RMM pool allocations.

Both structures are *observers*: they are fed from guarded hook sites in
the clock, the pool allocator, and the buffer manager, never mutate the
observed objects, and never advance the simulated clock — behaviour with
the sanitizer attached is byte-identical to behaviour without it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HBGraph", "HBNode", "ShadowLedger", "LiveAllocation"]


@dataclass(frozen=True)
class HBNode:
    """One node of the happens-before graph: a stream work item or a host
    sync point."""

    nid: int
    kind: str  # "issue" | "wait"
    stream: str
    start: float
    end: float


class HBGraph:
    """Happens-before over stream issue/wait edges.

    Nodes are stream work items (``issue``) and host sync points
    (``wait``).  Edges:

    * program order within a stream: each issue happens-before the next
      issue on the same stream (the stream frontier serialises them);
    * sync edges: a host ``wait(until)`` happens-after every issue on
      that stream whose completion timestamp is ``<= until``.

    The *synced frontier* of a stream is the largest event timestamp the
    host has ever waited to — an event is ``covered`` (safe to consume
    host-side) exactly when its timestamp is at or below that frontier.
    """

    def __init__(self) -> None:
        self.nodes: list[HBNode] = []
        self.edges: list[tuple[int, int]] = []
        self._last_issue: dict[str, int] = {}
        self._unsynced: dict[str, list[int]] = {}
        self._synced_frontier: dict[str, float] = {}

    def on_issue(self, stream: str, start: float, end: float) -> int:
        nid = len(self.nodes)
        self.nodes.append(HBNode(nid, "issue", stream, start, end))
        prev = self._last_issue.get(stream)
        if prev is not None:
            self.edges.append((prev, nid))
        self._last_issue[stream] = nid
        self._unsynced.setdefault(stream, []).append(nid)
        return nid

    def on_wait(self, stream: str, until: float) -> int:
        nid = len(self.nodes)
        self.nodes.append(HBNode(nid, "wait", stream, until, until))
        pending = self._unsynced.get(stream, [])
        kept: list[int] = []
        for src in pending:
            if self.nodes[src].end <= until:
                self.edges.append((src, nid))
            else:
                kept.append(src)
        self._unsynced[stream] = kept
        frontier = self._synced_frontier.get(stream, 0.0)
        if until > frontier:
            self._synced_frontier[stream] = until
        return nid

    def covered(self, stream: str, event_end: float) -> bool:
        """Whether the host has a sync edge at or past ``event_end``."""
        return event_end <= self._synced_frontier.get(stream, 0.0)

    def synced_frontier(self, stream: str) -> float:
        return self._synced_frontier.get(stream, 0.0)

    def acyclic(self) -> bool:
        """Edges always point from an older node id to a newer one by
        construction; verify that property actually holds (the invariant
        the hypothesis suite asserts)."""
        return all(src < dst for src, dst in self.edges)

    def stats(self) -> dict:
        return {
            "hb_nodes": len(self.nodes),
            "hb_edges": len(self.edges),
            "hb_streams": len(self._last_issue),
        }


@dataclass
class LiveAllocation:
    """Shadow record of one live pool allocation."""

    alloc_id: int
    size: int
    owner: object
    generation: int


class ShadowLedger:
    """Event-sourced mirror of the RMM pool's live allocations.

    Fed from the allocator's hook sites (allocate / free /
    release_owner / reset); the drift check compares its totals against
    the pool's own counters, so paired bookkeeping bugs that a single
    counter cannot see show up as ledger disagreement.
    """

    def __init__(self) -> None:
        self.live: dict[int, LiveAllocation] = {}
        self.total_allocations = 0
        self.total_frees = 0
        self.resets = 0

    def on_alloc(self, alloc_id: int, size: int, owner: object, generation: int) -> None:
        self.live[alloc_id] = LiveAllocation(alloc_id, size, owner, generation)
        self.total_allocations += 1

    def on_free(self, alloc_id: int) -> bool:
        """Forget a freed allocation; False when it was not live (the
        double-free signal, judged by the caller against pool state)."""
        if self.live.pop(alloc_id, None) is None:
            return False
        self.total_frees += 1
        return True

    def on_release_owner(self, owner: object) -> int:
        """Drop every allocation tagged ``owner``; returns bytes dropped."""
        doomed = [a for a in self.live.values() if a.owner == owner]
        for alloc in doomed:
            del self.live[alloc.alloc_id]
            self.total_frees += 1
        return sum(a.size for a in doomed)

    def on_reset(self) -> None:
        self.live.clear()
        self.resets += 1

    def live_bytes(self) -> int:
        return sum(a.size for a in self.live.values())

    def owner_bytes(self) -> dict:
        """Live bytes grouped by owner tag (None = unowned)."""
        by_owner: dict = {}
        for alloc in self.live.values():
            by_owner[alloc.owner] = by_owner.get(alloc.owner, 0) + alloc.size
        return by_owner

    def stats(self) -> dict:
        return {
            "allocations_tracked": self.total_allocations,
            "frees_tracked": self.total_frees,
            "pool_resets": self.resets,
            "live_allocations": len(self.live),
        }
