"""Sanitized suite runners behind ``python -m repro sanitize``.

Each runner executes a deterministic, seeded slice of the repo's own
workloads with the sanitizer attached and returns a
:class:`~repro.analysis.sanitizers.SanitizerReport`:

* ``tpch`` — the single-node TPC-H queries across the engine
  configurations that exercise every async path (synchronous baseline,
  copy/compute overlap + prefetch, out-of-core partitioned execution,
  and a memory-capped config that forces cache spills);
* ``battery`` — a sample of the SQL shape battery through the
  MiniDuck -> Sirius acceleration path;
* ``fleet`` — sanitized fleet runs on all three routing policies, each
  additionally re-executed by the :class:`~.determinism
  .DeterminismChecker` under permuted scheduler tie-breaks and runtime
  nondeterminism traps.

The clean suite must report **zero** findings — CI fails on any.
"""

from __future__ import annotations

from .core import Sanitizer
from .determinism import DeterminismChecker
from .report import SanitizerReport

__all__ = [
    "run_tpch_suite",
    "run_battery_suite",
    "run_fleet_suite",
    "run_suite",
    "SUITES",
]

_SEED = 19920101


def _tpch_mix(queries):
    from ...hosts import MiniDuck
    from ...tpch import generate_tpch, tpch_query

    data = generate_tpch(sf=0.01, seed=_SEED)
    host = MiniDuck()
    host.load_tables(data)
    return data, [(f"q{n}", host.plan(tpch_query(n))) for n in queries]


def run_tpch_suite(queries=(1, 3, 6)) -> SanitizerReport:
    """Sanitize single-node TPC-H across the async-path configurations."""
    from ...core import SiriusEngine
    from ...gpu.specs import GH200

    data, plans = _tpch_mix(queries)
    configs = {
        "baseline": {},
        "overlap": {"overlap": True},
        "out-of-core": {"out_of_core": True},
        # Caching region capped below the working set: cold loads must
        # evict/spill mid-suite, exercising SA02/SA08 paths for real.
        "spill": {"memory_limit_gb": 0.0125, "overlap": True},
        # Fused streaming runs: the compiled-expression path must satisfy
        # the same dynamic invariants as the interpreted one.
        "fusion": {"fusion": True},
    }
    report = SanitizerReport(suite="tpch")
    for config, kwargs in configs.items():
        engine = SiriusEngine.for_spec(GH200, sanitize=True, **kwargs)
        for label, plan in plans:
            engine.execute(plan, data)
        for label, plan in plans:  # hot second pass: prefetch/hot hits
            engine.execute(plan, data)
        report.merge(engine.sanitizer.report(f"tpch:{config}"))
    return report


def run_battery_suite(limit: int | None = 40) -> SanitizerReport:
    """Sanitize a battery sample through the acceleration path."""
    from ...bench.baselines.battery import SCALE_FACTOR, battery_cases
    from ...core import SiriusEngine
    from ...gpu.specs import GH200
    from ...hosts import MiniDuck
    from ...tpch import generate_tpch

    data = generate_tpch(sf=SCALE_FACTOR, seed=_SEED)
    host = MiniDuck()
    host.load_tables(data)
    engine = SiriusEngine.for_spec(GH200, sanitize=True)
    cases = battery_cases()
    if limit is not None:
        cases = cases[:limit]
    for case in cases:
        engine.execute(host.plan(case.sql), host.tables)
    report = engine.sanitizer.report("battery")
    report.counters["battery_cases"] = len(cases)
    return report


_ROUTINGS = ("round-robin", "least-outstanding", "placement")


def run_fleet_suite(requests: int = 16, replicas: int = 3) -> SanitizerReport:
    """Sanitize fleet serving on every routing policy and re-run each
    schedule through the determinism checker."""
    from ...fleet import FleetScheduler, FleetWorkloadDriver, engine_factory
    from ...gpu.specs import GH200
    from ...hosts import MiniDuck
    from ...sched import WorkloadQuery
    from ...tpch import generate_tpch, tpch_query

    data = generate_tpch(sf=0.01, seed=_SEED)
    host = MiniDuck()
    host.load_tables(data)
    mix = [WorkloadQuery(f"q{n}", host.plan(tpch_query(n))) for n in (1, 3, 6)]
    report = SanitizerReport(suite="fleet")

    for routing in _ROUTINGS:
        fleets: list[FleetScheduler] = []

        def run_once(transform, routing=routing, fleets=fleets):
            policy = "fair" if transform is None else transform(_make_fair())
            fleet = FleetScheduler(
                engine_factory(GH200, warm=data),
                replicas=replicas,
                routing=routing,
                policy=policy,
                streams=2,
                seed=_SEED,
                sanitize=True,
            )
            fleets.append(fleet)
            driver = FleetWorkloadDriver(data, mix, seed=_SEED)
            return driver.open_loop(fleet, requests, rate_qps=2000.0)

        checker = DeterminismChecker(permutations=2)
        checker.check(run_once, site=f"fleet:{routing}")
        for finding in checker.findings:
            report.add(finding)
        for fleet in fleets:
            report.merge(fleet.sanitizer_report(f"fleet:{routing}"))
        report.counters[f"determinism_runs:{routing}"] = checker.runs
    return report


def _make_fair():
    from ...sched.policies import make_policy

    return make_policy("fair")


SUITES = {
    "tpch": run_tpch_suite,
    "battery": run_battery_suite,
    "fleet": run_fleet_suite,
}


def run_suite(suite: str = "all") -> SanitizerReport:
    """Run one named suite, or every suite merged (``all``)."""
    if suite in SUITES:
        return SUITES[suite]()
    if suite != "all":
        raise ValueError(f"unknown sanitize suite {suite!r}")
    merged = SanitizerReport(suite="all")
    for runner in SUITES.values():
        merged.merge(runner())
    return merged


def sanitized_query_check(engine, plan, catalog) -> SanitizerReport:
    """One-shot convenience: execute ``plan`` under a fresh sanitizer
    attached to ``engine`` and return the report (used by tests and the
    ``Sanitizer`` context examples)."""
    sanitizer = Sanitizer()
    sanitizer.attach(engine.device, engine.buffer_manager)
    previous = getattr(engine, "sanitizer", None)
    engine.sanitizer = sanitizer
    try:
        engine.execute(plan, catalog)
    finally:
        engine.sanitizer = previous
        sanitizer.detach()
    return sanitizer.report("adhoc")
