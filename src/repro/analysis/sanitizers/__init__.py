"""Runtime sanitizers: dynamic invariants over sanitized runs.

The static analysis layer (:mod:`repro.analysis`) proves properties of
plans and source; this subpackage proves properties of *runs*:

* :class:`Sanitizer` — happens-before graph over stream issue/wait
  edges plus a shadow ledger of pool allocations, attached opt-in via
  ``SiriusEngine(..., sanitize=True)``, ``ServingScheduler(...,
  sanitize=True)``, ``FleetScheduler(..., sanitize=True)``, or the
  :func:`sanitized` context manager (SA01–SA08);
* :class:`DeterminismChecker` — re-runs schedules under permuted
  tie-breaks and runtime nondeterminism traps (SA09–SA10);
* suite runners behind ``python -m repro sanitize`` (:mod:`.cli`).
"""

from .core import Sanitizer, sanitized
from .determinism import DeterminismChecker, NondeterminismTrap, PermutedPolicy
from .report import SanitizerReport
from .rules import SA_RULES, SA_SEVERITY
from .shadow import HBGraph, ShadowLedger

__all__ = [
    "SA_RULES",
    "SA_SEVERITY",
    "Sanitizer",
    "sanitized",
    "SanitizerReport",
    "DeterminismChecker",
    "NondeterminismTrap",
    "PermutedPolicy",
    "HBGraph",
    "ShadowLedger",
]
