"""Structured output of a sanitized run.

A :class:`SanitizerReport` aggregates the findings of one or more
sanitized runs together with the shadow-state statistics that prove the
checks actually covered something (events tracked, allocations mirrored,
checks executed).  Findings reuse the :class:`~repro.analysis.report
.Finding` vocabulary so the SA catalog surfaces through the exact same
machinery as the PA/RR catalogs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..report import Finding
from .rules import SA_RULES

__all__ = ["SanitizerReport"]


@dataclass
class SanitizerReport:
    """Findings plus coverage counters for one sanitized suite/run."""

    suite: str = "adhoc"
    findings: list[Finding] = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def rules_hit(self) -> set[str]:
        return {f.rule for f in self.findings}

    def add(self, finding: Finding) -> None:
        if finding.rule not in SA_RULES:
            raise ValueError(f"unknown sanitizer rule {finding.rule!r}")
        self.findings.append(finding)

    def merge(self, other: "SanitizerReport") -> None:
        """Fold another report (e.g. one replica's) into this one."""
        self.findings.extend(other.findings)
        for key, value in other.counters.items():
            if isinstance(value, (int, float)):
                self.counters[key] = self.counters.get(key, 0) + value
            else:
                self.counters[key] = value

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "ok": self.ok,
            "rules": dict(SA_RULES),
            "counters": dict(self.counters),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        checks = self.counters.get("checks_run", 0)
        events = self.counters.get("stream_events", 0)
        allocs = self.counters.get("allocations_tracked", 0)
        return (
            f"sanitizer[{self.suite}]: {status} "
            f"({checks} checks, {events} stream events, {allocs} allocations)"
        )
