"""Front 1: static dataflow analysis over the plan IR.

Where :meth:`repro.plan.Plan.validate` raises on the *first* structural
problem, the analyzer performs a full bottom-up pass that keeps going:
schemas are propagated defensively through every relation, every
expression is type-checked, exchange placement is verified, GPU
supportability is decided statically, and the plan's processing-pool
working set is estimated per pipeline breaker — all collected into one
:class:`~repro.analysis.report.AnalysisReport`.

Admission control consumes the report *before* the query touches the
device (the Theseus-style front-loaded feasibility check): an ``error``
finding means the plan cannot execute and should be rejected; a
``gpu-unsupported`` warning means the query will need the ``cpu-plan``
fallback tier; a working set beyond the pool predicts the
``gpu-retry-spill`` tier.

Rule catalog (each rule has passing and failing fixtures in
``tests/analysis``):

======  =========  ===========================================================
rule    severity   meaning
======  =========  ===========================================================
PA01    error      read references a table absent from the catalog
PA02    error      ordinal out of range (field ref, group, sort, join,
                   exchange key)
PA03    error      expression fails type inference
PA04    error      filter / pushed filter / join post-filter is not boolean
PA05    error      aggregate misuse: non-aggregate measure, aggregate call in
                   a scalar position, nested aggregates, duplicate output
                   names
PA06    error      join keys incompatible, or key-less non-inner join
PA07    warning    exchange misplacement: ignored partition keys, redundant
                   adjacent exchanges (error: shuffle without keys)
PA08    warning    construct unsupported on the GPU (non-literal LIKE
                   pattern / IN list / substring bounds, ...): query will
                   need the cpu-plan fallback tier
PA09    warning    static working set exceeds the device processing pool:
                   query will need the gpu-retry-spill tier
PA10    error      fetch offset / count negative
======  =========  ===========================================================
"""

from __future__ import annotations

from typing import Mapping

from ..columnar import BOOL, Schema, Table
from ..plan import Plan
from ..plan.expressions import (
    AggregateCall,
    Expression,
    FieldRef,
    Literal,
    ScalarCall,
    aggregate_result_type,
    infer_type,
)
from ..plan.relations import (
    AggregateRel,
    ExchangeRel,
    FetchRel,
    FilterRel,
    JoinRel,
    ProjectRel,
    ReadRel,
    Relation,
    SortRel,
)
from .report import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    TIER_CPU_PLAN,
    TIER_GPU,
    TIER_GPU_SPILL,
    TIER_REJECT,
    TIER_SPILL,
    AnalysisReport,
    Finding,
)

__all__ = ["analyze_plan", "PLAN_RULES"]

# rule id -> short description, for ``python -m repro.analysis rules``.
PLAN_RULES = {
    "PA01": "read references a table absent from the catalog",
    "PA02": "ordinal out of range (field/group/sort/join/exchange key)",
    "PA03": "expression fails type inference",
    "PA04": "predicate position holds a non-boolean expression",
    "PA05": "aggregate misuse (measure shape, scalar position, duplicates)",
    "PA06": "join key type mismatch or key-less non-inner join",
    "PA07": "exchange misplacement (keys ignored / missing / redundant)",
    "PA08": "construct unsupported on the GPU (needs cpu-plan fallback)",
    "PA09": "static working set exceeds the processing pool (needs spill)",
    "PA10": "fetch offset/count negative",
}

# Scalar-call argument positions the device evaluator requires to be
# literals (mirrors repro.core.expr_eval's _literal_value sites).
_LITERAL_ONLY_ARGS = {
    "like": [(1, "LIKE pattern")],
    "not_like": [(1, "LIKE pattern")],
    "contains": [(1, "contains needle")],
    "starts_with": [(1, "starts_with prefix")],
}


def analyze_plan(
    plan: Plan,
    catalog: Mapping[str, Table] | None = None,
    device=None,
    out_of_core: bool = False,
) -> AnalysisReport:
    """Statically analyze ``plan``; never raises on plan defects.

    Args:
        plan: The logical plan to analyze.
        catalog: Host tables by name; enables unknown-table checks and the
            working-set / cardinality estimate.  Exchange temp tables
            (``__ex*``) are treated as known-but-unsized.
        device: A :class:`~repro.gpu.device.Device`; enables the service
            estimate and the pool-capacity (spill-tier) check.
        out_of_core: The engine that will run the plan supports partitioned
            out-of-core execution: an over-pool working set is then a
            priced ``gpu-spill`` verdict (the query completes on the GPU
            through the tiered spill store) instead of a prediction of the
            batched ``gpu-retry-spill`` tier.
    """
    from ..core.fallback import plan_fingerprint  # lazy: core imports us back

    report = AnalysisReport(plan_fingerprint=plan_fingerprint(plan))
    analyzer = _PlanAnalyzer(report, catalog)
    schema = analyzer.visit(plan.root, "root")
    if schema is not None:
        report.output_schema = [(f.name, f.dtype.name) for f in schema]

    if report.ok and catalog is not None and device is not None:
        _estimate(plan, catalog, device, report, out_of_core=out_of_core)

    report.gpu_supported = not any(f.rule == "PA08" for f in report.findings)
    if not report.ok:
        report.suggested_tier = TIER_REJECT
    elif not report.gpu_supported:
        report.suggested_tier = TIER_CPU_PLAN
    elif (
        report.working_set_bytes is not None
        and device is not None
        and report.working_set_bytes > device.processing_pool.capacity
    ):
        report.findings.append(
            Finding(
                "PA09",
                SEVERITY_WARNING,
                f"static working set {report.working_set_bytes} B exceeds the "
                f"processing pool ({device.processing_pool.capacity} B); the "
                "query is predicted to need out-of-core execution",
                "root",
            )
        )
        report.suggested_tier = TIER_GPU_SPILL if out_of_core else TIER_SPILL
    else:
        report.suggested_tier = TIER_GPU
    return report


class _PlanAnalyzer:
    """Bottom-up schema propagation with accumulated findings."""

    def __init__(self, report: AnalysisReport, catalog: Mapping[str, Table] | None):
        self.report = report
        self.catalog = catalog

    def flag(self, rule: str, severity: str, message: str, site: str) -> None:
        self.report.findings.append(Finding(rule, severity, message, site))

    # -- relation dispatch ---------------------------------------------------

    def visit(self, rel: Relation, path: str) -> Schema | None:
        """Return the relation's output schema, or ``None`` when it cannot
        be derived (the blocking defect has already been flagged)."""
        site = f"{path} ({type(rel).__name__})"
        if isinstance(rel, ReadRel):
            return self._read(rel, site)
        if isinstance(rel, FilterRel):
            schema = self.visit(rel.input_rel, f"{path}.input")
            if schema is not None:
                self._check_predicate(rel.condition, schema, site, "filter condition")
            return schema
        if isinstance(rel, ProjectRel):
            return self._project(rel, path, site)
        if isinstance(rel, JoinRel):
            return self._join(rel, path, site)
        if isinstance(rel, AggregateRel):
            return self._aggregate(rel, path, site)
        if isinstance(rel, SortRel):
            schema = self.visit(rel.input_rel, f"{path}.input")
            if schema is not None:
                for idx, _asc in rel.sort_keys:
                    if idx >= len(schema):
                        self.flag(
                            "PA02",
                            SEVERITY_ERROR,
                            f"sort key ordinal ${idx} out of range "
                            f"(input arity {len(schema)})",
                            site,
                        )
            return schema
        if isinstance(rel, FetchRel):
            schema = self.visit(rel.input_rel, f"{path}.input")
            if rel.offset < 0 or (rel.count is not None and rel.count < 0):
                self.flag(
                    "PA10",
                    SEVERITY_ERROR,
                    f"fetch offset/count must be non-negative "
                    f"(offset={rel.offset}, count={rel.count})",
                    site,
                )
            return schema
        if isinstance(rel, ExchangeRel):
            return self._exchange(rel, path, site)
        # Unknown relation subclass: pass through the first input's schema.
        if rel.inputs:
            return self.visit(rel.inputs[0], f"{path}.input")
        return None

    # -- per-relation checks -------------------------------------------------

    def _read(self, rel: ReadRel, site: str) -> Schema | None:
        if (
            self.catalog is not None
            and rel.table_name not in self.catalog
            and not rel.table_name.startswith("__ex")
        ):
            self.flag(
                "PA01",
                SEVERITY_ERROR,
                f"table {rel.table_name!r} is not in the catalog",
                site,
            )
        try:
            schema = rel.output_schema()
        except (KeyError, ValueError) as exc:
            self.flag("PA02", SEVERITY_ERROR, f"bad projection: {exc}", site)
            return None
        if rel.filter_expr is not None:
            self._check_predicate(rel.filter_expr, schema, site, "pushed filter")
        return schema

    def _project(self, rel: ProjectRel, path: str, site: str) -> Schema | None:
        in_schema = self.visit(rel.input_rel, f"{path}.input")
        broken = False
        if len(set(rel.names)) != len(rel.names):
            self.flag(
                "PA05",
                SEVERITY_ERROR,
                f"project emits duplicate names: {rel.names}",
                site,
            )
            broken = True
        if in_schema is None:
            return None
        fields = []
        for name, expr in zip(rel.names, rel.expressions):
            dtype = self._check_scalar(expr, in_schema, site, f"projection {name!r}")
            if dtype is None:
                broken = True
            else:
                fields.append((name, dtype))
        if broken:
            return None
        return Schema(fields)

    def _join(self, rel: JoinRel, path: str, site: str) -> Schema | None:
        left = self.visit(rel.left, f"{path}.left")
        right = self.visit(rel.right, f"{path}.right")
        if not rel.left_keys and rel.join_type != "inner":
            self.flag(
                "PA06",
                SEVERITY_ERROR,
                f"key-less (cross) joins must be inner joins, got {rel.join_type!r}",
                site,
            )
        if left is None or right is None:
            return None
        for lk, rk in zip(rel.left_keys, rel.right_keys):
            if lk >= len(left) or rk >= len(right):
                self.flag(
                    "PA02",
                    SEVERITY_ERROR,
                    f"join key ordinal out of range: ${lk}=${rk} "
                    f"(arities {len(left)}/{len(right)})",
                    site,
                )
                continue
            lt = left.fields[lk].dtype
            rt = right.fields[rk].dtype
            if not (lt is rt or (lt.is_numeric and rt.is_numeric)):
                self.flag(
                    "PA06",
                    SEVERITY_ERROR,
                    f"join key type mismatch: {lt} vs {rt}",
                    site,
                )
        try:
            out_schema = rel.output_schema()
        except Exception:  # key defects above already explain this
            return None
        if rel.post_filter is not None:
            from ..plan.relations import join_output_schema

            combined = join_output_schema(left, right)
            self._check_predicate(rel.post_filter, combined, site, "join post-filter")
        return out_schema

    def _aggregate(self, rel: AggregateRel, path: str, site: str) -> Schema | None:
        in_schema = self.visit(rel.input_rel, f"{path}.input")
        if in_schema is None:
            return None
        fields: list[tuple[str, object]] = []
        broken = False
        for g in rel.group_indices:
            if g >= len(in_schema):
                self.flag(
                    "PA02",
                    SEVERITY_ERROR,
                    f"group ordinal ${g} out of range (input arity {len(in_schema)})",
                    site,
                )
                broken = True
            else:
                f = in_schema.fields[g]
                fields.append((f.name, f.dtype))
        for agg, name in rel.measures:
            if not isinstance(agg, AggregateCall):
                self.flag(
                    "PA05",
                    SEVERITY_ERROR,
                    f"measure {name!r} is not an aggregate call: {agg!r}",
                    site,
                )
                broken = True
                continue
            if agg.arg is not None:
                if any(
                    isinstance(node, AggregateCall)
                    for node in _walk_expr(agg.arg)
                ):
                    self.flag(
                        "PA05",
                        SEVERITY_ERROR,
                        f"measure {name!r} nests an aggregate inside an aggregate",
                        site,
                    )
                    broken = True
                    continue
                if self._check_scalar(
                    agg.arg, in_schema, site, f"measure {name!r} argument"
                ) is None:
                    broken = True
                    continue
            try:
                fields.append((name, aggregate_result_type(agg, in_schema)))
            except (TypeError, KeyError, IndexError) as exc:
                self.flag(
                    "PA03", SEVERITY_ERROR, f"measure {name!r}: {exc}", site
                )
                broken = True
        names = [n for n, _ in fields]
        if len(set(names)) != len(names):
            self.flag(
                "PA05",
                SEVERITY_ERROR,
                f"aggregate emits duplicate names: {names}",
                site,
            )
            broken = True
        if broken:
            return None
        return Schema(fields)

    def _exchange(self, rel: ExchangeRel, path: str, site: str) -> Schema | None:
        schema = self.visit(rel.input_rel, f"{path}.input")
        if rel.kind == "shuffle" and not rel.keys:
            self.flag(
                "PA07", SEVERITY_ERROR, "shuffle exchange has no partition keys", site
            )
        if rel.kind != "shuffle" and rel.keys:
            self.flag(
                "PA07",
                SEVERITY_WARNING,
                f"{rel.kind} exchange ignores its partition keys {rel.keys}",
                site,
            )
        if isinstance(rel.input_rel, ExchangeRel):
            self.flag(
                "PA07",
                SEVERITY_WARNING,
                f"redundant adjacent exchanges "
                f"({rel.input_rel.kind} feeding {rel.kind})",
                site,
            )
        if schema is not None:
            for idx in rel.keys:
                if idx >= len(schema):
                    self.flag(
                        "PA02",
                        SEVERITY_ERROR,
                        f"exchange key ordinal ${idx} out of range "
                        f"(input arity {len(schema)})",
                        site,
                    )
        return schema

    # -- expression checks ---------------------------------------------------

    def _check_scalar(self, expr: Expression, schema: Schema, site: str, what: str):
        """Type-check a scalar-position expression; returns its dtype or
        ``None`` after flagging the blocking defect."""
        ok = True
        for node in _walk_expr(expr):
            if isinstance(node, FieldRef) and node.index >= len(schema):
                self.flag(
                    "PA02",
                    SEVERITY_ERROR,
                    f"{what}: field ${node.index} out of range "
                    f"(input arity {len(schema)})",
                    site,
                )
                ok = False
            if isinstance(node, AggregateCall) and node is not expr:
                # Direct measure checks pass the AggregateCall itself;
                # anywhere deeper an aggregate is a scalar-position misuse.
                self.flag(
                    "PA05",
                    SEVERITY_ERROR,
                    f"{what}: aggregate call {node!r} in a scalar position",
                    site,
                )
                ok = False
            if isinstance(node, ScalarCall):
                self._check_gpu_support(node, site, what)
        if isinstance(expr, AggregateCall):
            self.flag(
                "PA05",
                SEVERITY_ERROR,
                f"{what}: aggregate call {expr!r} in a scalar position",
                site,
            )
            ok = False
        if not ok:
            return None
        try:
            return infer_type(expr, schema)
        except (TypeError, KeyError, IndexError) as exc:
            self.flag("PA03", SEVERITY_ERROR, f"{what}: {exc}", site)
            return None

    def _check_predicate(
        self, expr: Expression, schema: Schema, site: str, what: str
    ) -> None:
        dtype = self._check_scalar(expr, schema, site, what)
        if dtype is not None and dtype is not BOOL:
            self.flag(
                "PA04",
                SEVERITY_ERROR,
                f"{what} is not boolean (inferred {dtype})",
                site,
            )

    def _check_gpu_support(self, call: ScalarCall, site: str, what: str) -> None:
        """Flag constructs the device evaluator rejects at runtime."""
        for pos, label in _LITERAL_ONLY_ARGS.get(call.func, ()):
            if pos < len(call.args) and not isinstance(call.args[pos], Literal):
                self.flag(
                    "PA08",
                    SEVERITY_WARNING,
                    f"{what}: {label} must be a literal for GPU execution, "
                    f"got {call.args[pos]!r}",
                    site,
                )
        if call.func in ("in", "not_in"):
            for arg in call.args[1:]:
                if not isinstance(arg, Literal):
                    self.flag(
                        "PA08",
                        SEVERITY_WARNING,
                        f"{what}: IN list element must be a literal for GPU "
                        f"execution, got {arg!r}",
                        site,
                    )
        if call.func == "substring" and not (
            "start" in call.options and "length" in call.options
        ):
            for pos, label in ((1, "substring start"), (2, "substring length")):
                if pos < len(call.args) and not isinstance(call.args[pos], Literal):
                    self.flag(
                        "PA08",
                        SEVERITY_WARNING,
                        f"{what}: {label} must be a literal for GPU execution, "
                        f"got {call.args[pos]!r}",
                        site,
                    )


def _walk_expr(expr: Expression):
    yield expr
    for child in expr.children():
        yield from _walk_expr(child)


# -- working-set estimation ---------------------------------------------------


def _estimate(
    plan: Plan, catalog, device, report: AnalysisReport, out_of_core: bool = False
) -> None:
    """Fill the report's estimate fields.

    Totals come from :func:`repro.sched.estimator.estimate_plan` (the same
    numbers admission control gates on); the per-pipeline-breaker
    breakdown is the analyzer's own pass over the same cardinality model.
    The test suite cross-checks that the breakdown sums to the
    estimator's total.
    """
    from ..sched.estimator import estimate_plan

    est = estimate_plan(plan, catalog, device, out_of_core=out_of_core)
    report.working_set_bytes = est.working_set_bytes
    report.estimated_rows = est.rows
    report.estimated_service_s = est.service_s
    sites: list[dict] = []
    rows, nbytes = _visit_bytes(plan.root, "root", catalog, sites)
    sites.append({"site": "root", "kind": "result", "bytes": int(nbytes)})
    report.pipeline_working_sets = sites


def _visit_bytes(rel: Relation, path: str, catalog, sites: list[dict]):
    """Mirror of the estimator's cardinality pass, tracking contribution
    sites (one per pipeline breaker)."""
    from ..sched.estimator import (
        DEFAULT_GROUPS,
        FILTER_SELECTIVITY,
        HASH_TABLE_FACTOR,
        SEMI_JOIN_SELECTIVITY,
        SORT_BUFFER_FACTOR,
    )

    if isinstance(rel, ReadRel):
        table = catalog.get(rel.table_name)
        if table is None:
            return 0.0, 0.0
        rows = float(table.num_rows)
        if rel.projection is not None:
            wanted = set(rel.projection)
            nbytes = float(
                sum(
                    col.nbytes
                    for f, col in zip(table.schema, table.columns)
                    if f.name in wanted
                )
            )
        else:
            nbytes = float(table.nbytes)
        if rel.filter_expr is not None:
            return rows * FILTER_SELECTIVITY, nbytes * FILTER_SELECTIVITY
        return rows, nbytes
    if isinstance(rel, FilterRel):
        rows, nbytes = _visit_bytes(rel.inputs[0], f"{path}.input", catalog, sites)
        return rows * FILTER_SELECTIVITY, nbytes * FILTER_SELECTIVITY
    if isinstance(rel, JoinRel):
        probe_rows, probe_bytes = _visit_bytes(
            rel.inputs[0], f"{path}.left", catalog, sites
        )
        build_rows, build_bytes = _visit_bytes(
            rel.inputs[1], f"{path}.right", catalog, sites
        )
        sites.append(
            {
                "site": path,
                "kind": "hash-build",
                "bytes": int(HASH_TABLE_FACTOR * build_bytes),
            }
        )
        if rel.join_type in ("semi", "anti"):
            return (
                probe_rows * SEMI_JOIN_SELECTIVITY,
                probe_bytes * SEMI_JOIN_SELECTIVITY,
            )
        out_rows = probe_rows
        per_row = (probe_bytes / probe_rows if probe_rows else 0.0) + (
            build_bytes / build_rows if build_rows else 0.0
        )
        return out_rows, out_rows * per_row
    if isinstance(rel, AggregateRel):
        rows, nbytes = _visit_bytes(rel.inputs[0], f"{path}.input", catalog, sites)
        groups = float(min(rows, DEFAULT_GROUPS)) if rel.group_indices else 1.0
        per_row = nbytes / rows if rows else 0.0
        out_bytes = groups * max(
            per_row, 8.0 * (len(rel.group_indices) + len(rel.measures))
        )
        sites.append(
            {"site": path, "kind": "aggregate-state", "bytes": int(out_bytes)}
        )
        return groups, out_bytes
    if isinstance(rel, SortRel):
        rows, nbytes = _visit_bytes(rel.inputs[0], f"{path}.input", catalog, sites)
        sites.append(
            {"site": path, "kind": "sort-buffer", "bytes": int(SORT_BUFFER_FACTOR * nbytes)}
        )
        return rows, nbytes
    if isinstance(rel, FetchRel):
        rows, nbytes = _visit_bytes(rel.inputs[0], f"{path}.input", catalog, sites)
        if rel.count is not None and rows > 0:
            keep = min(float(rel.count), rows) / rows
            return rows * keep, nbytes * keep
        return rows, nbytes
    if rel.inputs:  # ProjectRel, ExchangeRel, unknown unary: pass through
        return _visit_bytes(rel.inputs[0], f"{path}.input", catalog, sites)
    return 0.0, 0.0
