"""A minimal columnar file format ("RPQ" — repro parquet).

The paper's hosts read Parquet/host-native files from disk; Sirius then
caches the decoded columns on device.  This module provides the equivalent
substrate: a self-describing binary columnar file with per-column buffers,
so the host databases can persist and reload catalogs.

Layout: a JSON header (schema, row count, per-column buffer byte lengths)
preceded by an 8-byte little-endian header length, followed by the raw
buffers in order: for each column — validity (optional), data, and for
string columns a UTF-8 newline-joined dictionary blob.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .column import Column
from .dtypes import dtype_from_name
from .table import Schema, Table

__all__ = ["write_table", "read_table"]

_MAGIC = b"RPQ1"


def write_table(table: Table, path: str | Path) -> int:
    """Serialize ``table`` to ``path``.  Returns the file size in bytes."""
    buffers: list[bytes] = []
    col_meta = []
    for field, col in zip(table.schema, table.columns):
        meta: dict = {"name": field.name, "dtype": field.dtype.name}
        if col.validity is not None:
            blob = np.packbits(col.validity).tobytes()
            meta["validity_len"] = len(blob)
            buffers.append(blob)
        data_blob = col.data.tobytes()
        meta["data_len"] = len(data_blob)
        buffers.append(data_blob)
        if col.dictionary is not None:
            entries = [str(s) for s in col.dictionary]
            if any("\n" in s for s in entries):
                raise ValueError(
                    "RPQ dictionaries are newline-delimited; embedded newlines "
                    "are not supported by this format"
                )
            dict_blob = "\n".join(entries).encode("utf-8")
            meta["dict_len"] = len(dict_blob)
            meta["dict_size"] = len(col.dictionary)
            buffers.append(dict_blob)
        col_meta.append(meta)
    header = json.dumps({"num_rows": table.num_rows, "columns": col_meta}).encode("utf-8")
    path = Path(path)
    with open(path, "wb") as f:
        f.write(_MAGIC)
        f.write(len(header).to_bytes(8, "little"))
        f.write(header)
        for blob in buffers:
            f.write(blob)
    return path.stat().st_size


def read_table(path: str | Path) -> Table:
    """Read a table previously written with :func:`write_table`."""
    with open(path, "rb") as f:
        magic = f.read(4)
        if magic != _MAGIC:
            raise ValueError(f"{path}: not an RPQ file (magic {magic!r})")
        header_len = int.from_bytes(f.read(8), "little")
        header = json.loads(f.read(header_len).decode("utf-8"))
        num_rows = header["num_rows"]
        fields = []
        columns = []
        for meta in header["columns"]:
            dtype = dtype_from_name(meta["dtype"])
            validity = None
            if "validity_len" in meta:
                packed = np.frombuffer(f.read(meta["validity_len"]), dtype=np.uint8)
                validity = np.unpackbits(packed)[:num_rows].astype(np.bool_)
            data = np.frombuffer(f.read(meta["data_len"]), dtype=dtype.numpy_dtype).copy()
            dictionary = None
            if "dict_len" in meta:
                blob = f.read(meta["dict_len"]).decode("utf-8")
                dictionary = np.asarray(blob.split("\n") if meta["dict_size"] else [], dtype=object)
            fields.append((meta["name"], dtype))
            columns.append(Column(dtype, data, validity, dictionary))
    return Table(Schema(fields), columns)
