"""Schemas and host-side tables (ordered collections of equal-length columns)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .column import Column, column_from_pylist
from .dtypes import DType, dtype_from_name

__all__ = ["Field", "Schema", "Table", "concat_tables"]


@dataclass(frozen=True)
class Field:
    """A named, typed slot in a schema."""

    name: str
    dtype: DType

    def __repr__(self) -> str:
        return f"{self.name}: {self.dtype}"


class Schema:
    """An ordered list of fields with by-name lookup."""

    __slots__ = ("fields", "_index")

    def __init__(self, fields: Iterable[Field | tuple[str, DType | str]]):
        resolved = []
        for f in fields:
            if isinstance(f, Field):
                resolved.append(f)
            else:
                name, dtype = f
                if isinstance(dtype, str):
                    dtype = dtype_from_name(dtype)
                resolved.append(Field(name, dtype))
        self.fields: tuple[Field, ...] = tuple(resolved)
        self._index = {f.name: i for i, f in enumerate(self.fields)}
        if len(self._index) != len(self.fields):
            raise ValueError("duplicate field names in schema")

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def dtypes(self) -> list[DType]:
        return [f.dtype for f in self.fields]

    def index_of(self, name: str) -> int:
        """Position of ``name``; raises KeyError if absent."""
        return self._index[name]

    def field(self, name: str) -> Field:
        return self.fields[self._index[name]]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self.fields)
        return f"Schema({inner})"


class Table:
    """An immutable-by-convention host table: a schema plus its columns.

    This is the format the host databases (MiniDuck / MiniDoris) hold data
    in; Sirius' buffer manager copies it into the device caching region on
    the cold run, after which execution is fully GPU-resident.
    """

    __slots__ = ("schema", "columns")

    def __init__(self, schema: Schema, columns: Sequence[Column]):
        columns = list(columns)
        if len(columns) != len(schema):
            raise ValueError("column count does not match schema")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged table: column lengths {sorted(lengths)}")
        for field, col in zip(schema, columns):
            if col.dtype is not field.dtype:
                raise TypeError(f"column {field.name!r} is {col.dtype}, schema says {field.dtype}")
        self.schema = schema
        self.columns = tuple(columns)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_pydict(cls, data: Mapping[str, Sequence[Any]], schema: Schema) -> "Table":
        """Build a table from ``{name: python_values}`` following ``schema``."""
        columns = [column_from_pylist(data[f.name], f.dtype) for f in schema]
        return cls(schema, columns)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        return cls.from_pydict({f.name: [] for f in schema}, schema)

    # -- properties ---------------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(self.columns[0])

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self.columns)

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> Column:
        return self.columns[self.schema.index_of(name)]

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    # -- transformations ----------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Project a subset (or reordering) of columns by name."""
        schema = Schema([self.schema.field(n) for n in names])
        return Table(schema, [self.column(n) for n in names])

    def take(self, indices: np.ndarray) -> "Table":
        return Table(self.schema, [c.take(indices) for c in self.columns])

    def mask(self, keep: np.ndarray) -> "Table":
        return Table(self.schema, [c.mask(keep) for c in self.columns])

    def slice(self, start: int, length: int) -> "Table":
        return Table(self.schema, [c.slice(start, length) for c in self.columns])

    def rename(self, names: Sequence[str]) -> "Table":
        if len(names) != self.num_columns:
            raise ValueError("rename needs one name per column")
        schema = Schema([Field(n, f.dtype) for n, f in zip(names, self.schema)])
        return Table(schema, self.columns)

    def with_column(self, name: str, column: Column) -> "Table":
        """Append (or replace) a column."""
        if name in self.schema:
            cols = list(self.columns)
            cols[self.schema.index_of(name)] = column
            return Table(self.schema, cols)
        schema = Schema(list(self.schema.fields) + [Field(name, column.dtype)])
        return Table(schema, list(self.columns) + [column])

    # -- output ---------------------------------------------------------------

    def to_pydict(self) -> dict[str, list[Any]]:
        return {f.name: c.to_pylist() for f, c in zip(self.schema, self.columns)}

    def to_rows(self) -> list[tuple[Any, ...]]:
        cols = [c.to_pylist() for c in self.columns]
        return list(zip(*cols)) if cols else []

    def pretty(self, max_rows: int = 20) -> str:
        """Render an ASCII preview, the way a CLI result grid would."""
        names = self.schema.names()
        shown = self.slice(0, min(self.num_rows, max_rows))
        rows = [[_fmt(v) for v in row] for row in shown.to_rows()]
        widths = [
            max(len(n), *(len(r[i]) for r in rows)) if rows else len(n)
            for i, n in enumerate(names)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = [" | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rows]
        lines = [header, sep] + body
        if self.num_rows > max_rows:
            lines.append(f"... ({self.num_rows} rows total)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Table[{self.num_rows} rows x {self.num_columns} cols]"


def _fmt(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def concat_tables(tables: Sequence[Table]) -> Table:
    """Vertically concatenate tables sharing a schema.

    Used by the exchange layer to merge shuffled partitions back into one
    input table for the consuming fragment.
    """
    tables = [t for t in tables if t is not None]
    if not tables:
        raise ValueError("concat_tables needs at least one table")
    schema = tables[0].schema
    for t in tables[1:]:
        if t.schema.names() != schema.names() or t.schema.dtypes() != schema.dtypes():
            raise ValueError("concat_tables: mismatched schemas")
    out_cols = []
    for i, field in enumerate(schema):
        parts = [t.columns[i] for t in tables]
        if field.dtype.is_string:
            decoded = np.concatenate([p.decoded() for p in parts]) if parts else np.array([], object)
            out_cols.append(Column.from_strings(list(decoded)))
        else:
            data = np.concatenate([p.data for p in parts])
            masks = [p.is_valid_mask() for p in parts]
            validity = np.concatenate(masks)
            validity_arg = None if bool(validity.all()) else validity
            out_cols.append(Column(field.dtype, data, validity_arg))
    return Table(schema, out_cols)
