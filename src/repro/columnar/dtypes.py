"""Logical column types for the reproduction's Arrow-style columnar format.

Both Sirius and libcudf derive their columnar layout from Apache Arrow; this
module defines the (much smaller) set of logical types the reproduction
needs.  Each :class:`DType` knows its physical NumPy representation so that
columns can be stored as flat, zero-copy-shareable buffers:

* ``BOOL``    -> ``np.bool_``
* ``INT32``   -> ``np.int32``
* ``INT64``   -> ``np.int64``
* ``FLOAT64`` -> ``np.float64``
* ``DATE32``  -> ``np.int32`` (days since the Unix epoch, Arrow ``date32``)
* ``STRING``  -> dictionary-encoded: ``np.int32`` codes + a ``str`` dictionary

``DECIMAL(p, s)`` values in TPC-H are represented as ``FLOAT64``; the paper's
engine does the same style of widening when a type has no native kernel.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DType",
    "BOOL",
    "INT32",
    "INT64",
    "FLOAT64",
    "DATE32",
    "STRING",
    "ALL_DTYPES",
    "dtype_from_name",
    "date_to_days",
    "days_to_date",
    "common_numeric_type",
]

_EPOCH = datetime.date(1970, 1, 1)


@dataclass(frozen=True)
class DType:
    """A logical column type.

    Attributes:
        name: Canonical lowercase name (``"int64"``, ``"string"``, ...).
        numpy_dtype: Physical NumPy dtype of the value buffer.  For strings
            this is the dtype of the *code* buffer, not the dictionary.
        itemsize: Bytes per value in the physical buffer; used by the GPU
            cost model to charge memory traffic.
    """

    name: str
    numpy_dtype: np.dtype
    itemsize: int

    @property
    def is_numeric(self) -> bool:
        return self.name in ("int32", "int64", "float64")

    @property
    def is_integer(self) -> bool:
        return self.name in ("int32", "int64")

    @property
    def is_temporal(self) -> bool:
        return self.name == "date32"

    @property
    def is_string(self) -> bool:
        return self.name == "string"

    @property
    def is_boolean(self) -> bool:
        return self.name == "bool"

    def __repr__(self) -> str:
        return f"DType({self.name})"

    def __str__(self) -> str:
        return self.name


BOOL = DType("bool", np.dtype(np.bool_), 1)
INT32 = DType("int32", np.dtype(np.int32), 4)
INT64 = DType("int64", np.dtype(np.int64), 8)
FLOAT64 = DType("float64", np.dtype(np.float64), 8)
DATE32 = DType("date32", np.dtype(np.int32), 4)
STRING = DType("string", np.dtype(np.int32), 4)

ALL_DTYPES = (BOOL, INT32, INT64, FLOAT64, DATE32, STRING)

_BY_NAME = {t.name: t for t in ALL_DTYPES}

# SQL type spellings accepted by ``dtype_from_name``.
_ALIASES = {
    "boolean": "bool",
    "int": "int32",
    "integer": "int32",
    "bigint": "int64",
    "double": "float64",
    "float": "float64",
    "decimal": "float64",
    "numeric": "float64",
    "date": "date32",
    "varchar": "string",
    "char": "string",
    "text": "string",
}


def dtype_from_name(name: str) -> DType:
    """Resolve a type name or SQL spelling to a :class:`DType`.

    Raises:
        KeyError: If the name is not a known type or alias.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    return _BY_NAME[key]


def date_to_days(value: datetime.date | str) -> int:
    """Convert a date (or ISO ``YYYY-MM-DD`` string) to days since epoch."""
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    return (value - _EPOCH).days


def days_to_date(days: int) -> datetime.date:
    """Convert days since epoch back to a :class:`datetime.date`."""
    return _EPOCH + datetime.timedelta(days=int(days))


def common_numeric_type(left: DType, right: DType) -> DType:
    """Return the widened result type for arithmetic between two types.

    Follows the usual SQL promotion ladder: any float operand makes the
    result ``float64``; otherwise the wider integer wins.  Dates participate
    as int32 day counts (date - date, date + int).
    """
    if not (left.is_numeric or left.is_temporal):
        raise TypeError(f"{left} is not numeric")
    if not (right.is_numeric or right.is_temporal):
        raise TypeError(f"{right} is not numeric")
    if left is FLOAT64 or right is FLOAT64:
        return FLOAT64
    if left is INT64 or right is INT64:
        return INT64
    return INT32
