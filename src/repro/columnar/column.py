"""The host-side column: a typed value buffer plus optional validity mask.

The layout follows Apache Arrow's spirit (and therefore both Sirius' and
libcudf's internal formats in the paper):

* fixed-width types store one flat NumPy buffer;
* strings are dictionary-encoded — an ``int32`` code buffer plus a sorted
  ``str`` dictionary — which is also what makes string group-by take the
  *sort-based* path in the kernel library, mirroring libcudf's behaviour
  that the paper's Figure 5 discussion calls out;
* NULLs live in a separate boolean validity mask (``True`` = valid); a
  column with no mask is entirely valid.

Columns are immutable by convention: kernels always produce new columns.
"""

from __future__ import annotations

import datetime
from typing import Any, Iterable, Sequence

import numpy as np

from .dtypes import BOOL, DATE32, STRING, DType, date_to_days, days_to_date

__all__ = ["Column", "column_from_pylist"]

_NULL_CODE = -1  # dictionary code reserved for NULL slots in string columns


class Column:
    """A typed, optionally-nullable column of values.

    Attributes:
        dtype: Logical type of the column.
        data: Value buffer (codes for strings).  Always a 1-D NumPy array of
            ``dtype.numpy_dtype``.
        validity: Optional boolean mask, ``True`` where the row is valid.
        dictionary: For string columns, a NumPy object array of unique
            strings indexed by the codes in ``data``; ``None`` otherwise.
    """

    __slots__ = ("dtype", "data", "validity", "dictionary")

    def __init__(
        self,
        dtype: DType,
        data: np.ndarray,
        validity: np.ndarray | None = None,
        dictionary: np.ndarray | None = None,
    ):
        data = np.ascontiguousarray(data, dtype=dtype.numpy_dtype)
        if data.ndim != 1:
            raise ValueError("column data must be one-dimensional")
        if validity is not None:
            validity = np.ascontiguousarray(validity, dtype=np.bool_)
            if validity.shape != data.shape:
                raise ValueError("validity mask shape must match data shape")
            if bool(validity.all()):
                validity = None  # normalise: all-valid == no mask
        if dtype.is_string:
            if dictionary is None:
                raise ValueError("string columns require a dictionary")
            dictionary = np.asarray(dictionary, dtype=object)
        elif dictionary is not None:
            raise ValueError(f"{dtype} columns must not carry a dictionary")
        self.dtype = dtype
        self.data = data
        self.validity = validity
        self.dictionary = dictionary

    # -- construction -----------------------------------------------------

    @classmethod
    def from_strings(cls, values: Sequence[str | None]) -> "Column":
        """Dictionary-encode a sequence of Python strings (None = NULL)."""
        mask = np.array([v is not None for v in values], dtype=np.bool_)
        present = [v for v in values if v is not None]
        uniques, inverse = np.unique(np.asarray(present, dtype=object), return_inverse=True)
        codes = np.full(len(values), _NULL_CODE, dtype=np.int32)
        codes[mask] = inverse.astype(np.int32)
        validity = None if bool(mask.all()) else mask
        return cls(STRING, codes, validity, uniques)

    @classmethod
    def from_codes(
        cls,
        codes: np.ndarray,
        dictionary: np.ndarray,
        validity: np.ndarray | None = None,
    ) -> "Column":
        """Build a string column from an existing code buffer + dictionary."""
        return cls(STRING, codes, validity, dictionary)

    # -- basic properties --------------------------------------------------

    def __len__(self) -> int:
        return int(self.data.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes of the value buffer plus the validity mask (if any).

        The dictionary is excluded: it is shared, small relative to the code
        buffer, and the GPU cost model charges traffic for buffers actually
        streamed through kernels.
        """
        total = self.data.nbytes
        if self.validity is not None:
            total += self.validity.nbytes
        return int(total)

    @property
    def null_count(self) -> int:
        if self.validity is None:
            return 0
        return int((~self.validity).sum())

    def is_valid_mask(self) -> np.ndarray:
        """Return a boolean mask of valid rows (a fresh all-True array if
        the column has no NULLs)."""
        if self.validity is None:
            return np.ones(len(self), dtype=np.bool_)
        return self.validity.copy()

    # -- element access (testing / result rendering; not a kernel path) ----

    def __getitem__(self, i: int) -> Any:
        if self.validity is not None and not self.validity[i]:
            return None
        raw = self.data[i]
        if self.dtype.is_string:
            return str(self.dictionary[int(raw)])
        if self.dtype is DATE32:
            return days_to_date(int(raw))
        if self.dtype is BOOL:
            return bool(raw)
        if self.dtype.is_integer:
            return int(raw)
        return float(raw)

    def to_pylist(self) -> list[Any]:
        """Materialise the column as a list of Python values (None = NULL)."""
        return [self[i] for i in range(len(self))]

    # -- transformations ----------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position.  Negative indices are not supported."""
        indices = np.asarray(indices)
        data = self.data[indices]
        validity = self.validity[indices] if self.validity is not None else None
        return Column(self.dtype, data, validity, self.dictionary)

    def mask(self, keep: np.ndarray) -> "Column":
        """Filter rows by a boolean mask."""
        keep = np.asarray(keep, dtype=np.bool_)
        data = self.data[keep]
        validity = self.validity[keep] if self.validity is not None else None
        return Column(self.dtype, data, validity, self.dictionary)

    def slice(self, start: int, length: int) -> "Column":
        data = self.data[start : start + length]
        validity = self.validity[start : start + length] if self.validity is not None else None
        return Column(self.dtype, data, validity, self.dictionary)

    def cast(self, target: DType) -> "Column":
        """Cast to another logical type.

        Supported casts: between numerics, date32 -> int32/int64, and
        string -> string (identity).  String/numeric cross-casts are routed
        through Python parsing and are intended for literals, not bulk data.
        """
        if target is self.dtype:
            return self
        if self.dtype.is_string and target.is_string:
            return self
        if self.dtype.is_string:
            values = self.to_pylist()
            return column_from_pylist(
                [None if v is None else _parse_scalar(v, target) for v in values], target
            )
        if target.is_string:
            return Column.from_strings(
                [None if v is None else _render_scalar(v) for v in self.to_pylist()]
            )
        data = self.data.astype(target.numpy_dtype)
        return Column(target, data, self.validity, None)

    def compact_dictionary(self) -> "Column":
        """Rebuild a string column so the dictionary contains only codes in
        use.  Used after filters/gathers shrink a column far below its
        original dictionary."""
        if not self.dtype.is_string:
            return self
        valid = self.is_valid_mask()
        used = self.data[valid & (self.data >= 0)]
        uniques, inverse = np.unique(used, return_inverse=True)
        codes = np.full(len(self), _NULL_CODE, dtype=np.int32)
        codes[valid & (self.data >= 0)] = inverse.astype(np.int32)
        return Column(STRING, codes, self.validity, self.dictionary[uniques])

    def decoded(self) -> np.ndarray:
        """Return an object array of decoded strings (NULL -> None).

        Only meaningful for string columns; used by sort-based string
        kernels and result rendering.
        """
        if not self.dtype.is_string:
            raise TypeError("decoded() is only defined for string columns")
        out = np.empty(len(self), dtype=object)
        valid = self.is_valid_mask() & (self.data >= 0)
        out[valid] = self.dictionary[self.data[valid]]
        out[~valid] = None
        return out

    def __repr__(self) -> str:
        preview = ", ".join(repr(self[i]) for i in range(min(len(self), 5)))
        suffix = ", ..." if len(self) > 5 else ""
        return f"Column<{self.dtype}>[{len(self)}]({preview}{suffix})"


def _parse_scalar(value: str, target: DType) -> Any:
    if target is DATE32:
        return datetime.date.fromisoformat(value)
    if target.is_integer:
        return int(value)
    if target is BOOL:
        return value.strip().lower() in ("t", "true", "1")
    return float(value)


def _render_scalar(value: Any) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def column_from_pylist(values: Iterable[Any], dtype: DType) -> Column:
    """Build a column of ``dtype`` from Python values (None = NULL).

    Dates may be given as :class:`datetime.date` or ISO strings.
    """
    values = list(values)
    mask = np.array([v is not None for v in values], dtype=np.bool_)
    if dtype.is_string:
        return Column.from_strings([None if v is None else str(v) for v in values])
    data = np.zeros(len(values), dtype=dtype.numpy_dtype)
    for i, v in enumerate(values):
        if v is None:
            continue
        if dtype is DATE32:
            data[i] = date_to_days(v)
        else:
            data[i] = v
    validity = None if bool(mask.all()) else mask
    return Column(dtype, data, validity)
