"""Arrow-style columnar substrate shared by hosts, kernels, and Sirius."""

from .column import Column, column_from_pylist
from .dtypes import (
    ALL_DTYPES,
    BOOL,
    DATE32,
    FLOAT64,
    INT32,
    INT64,
    STRING,
    DType,
    common_numeric_type,
    date_to_days,
    days_to_date,
    dtype_from_name,
)
from .io import read_table, write_table
from .table import Field, Schema, Table, concat_tables

__all__ = [
    "ALL_DTYPES",
    "BOOL",
    "Column",
    "DATE32",
    "DType",
    "FLOAT64",
    "Field",
    "INT32",
    "INT64",
    "STRING",
    "Schema",
    "Table",
    "column_from_pylist",
    "common_numeric_type",
    "concat_tables",
    "date_to_days",
    "days_to_date",
    "dtype_from_name",
    "read_table",
    "write_table",
]
